//! Trace analysis independent of any cluster: critical path and work bounds.
//!
//! These are the invariants the property tests pin the simulator against:
//! no schedule can beat the critical path, and no schedule can beat total
//! work divided by total cores.

use std::time::Duration;

use weavepar_weave::trace::TraceGraph;

use crate::config::SimParams;

/// Length of the longest dependency chain (`after` + `parent` edges) through
/// the trace, in seconds of task cost. Communication-free lower bound on any
/// replay's makespan at `cpu_speed == 1`, `cpu_inflation == 1`.
pub fn critical_path(trace: &TraceGraph) -> f64 {
    // Tasks are id-ordered and edges always point to smaller ids, so one
    // forward pass suffices.
    let mut finish = vec![0.0f64; trace.len()];
    for t in &trace.tasks {
        let i = t.id.raw() as usize;
        let mut ready = 0.0f64;
        if let Some(a) = t.after {
            ready = ready.max(finish[a.raw() as usize]);
        }
        if let Some(p) = t.parent {
            // A child cannot start before its parent started; the parent's
            // start is its finish minus its own cost.
            let pi = p.raw() as usize;
            let p_cost = trace.tasks[pi].cost.as_secs_f64();
            ready = ready.max(finish[pi] - p_cost);
        }
        finish[i] = ready + t.cost.as_secs_f64();
    }
    finish.into_iter().fold(0.0, f64::max)
}

/// The greatest communication-free lower bound on the makespan of replaying
/// `trace` under `params`: max(critical path, total work / total cores),
/// scaled by the params' CPU model.
pub fn lower_bound(trace: &TraceGraph, params: &SimParams) -> f64 {
    let scale = params.cpu_inflation / params.cluster.cpu_speed.max(1e-12);
    let work = trace.total_cost().as_secs_f64() * scale;
    let cores = params.cluster.total_cores().max(1) as f64;
    let cp = critical_path(trace) * scale;
    cp.max(work / cores)
}

/// Convenience: total recorded work as a `Duration`.
pub fn total_work(trace: &TraceGraph) -> Duration {
    trace.total_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, MiddlewareProfile, Placement};
    use weavepar_weave::trace::{TaskId, TaskRecord};
    use weavepar_weave::{ObjId, Signature};

    fn task(id: u64, parent: Option<u64>, after: Option<u64>, cost_ms: u64) -> TaskRecord {
        TaskRecord {
            id: TaskId::from_raw(id),
            parent: parent.map(TaskId::from_raw),
            after: after.map(TaskId::from_raw),
            signature: Signature::new("T", "m"),
            target: Some(ObjId::from_raw(id)),
            async_spawn: true,
            issuer: 0,
            args_bytes: 0,
            ret_bytes: 0,
            cost: Duration::from_millis(cost_ms),
            seq: id,
        }
    }

    #[test]
    fn empty_trace_bounds() {
        let g = TraceGraph::default();
        assert_eq!(critical_path(&g), 0.0);
    }

    #[test]
    fn independent_tasks_cp_is_max() {
        let g = TraceGraph { tasks: vec![task(0, None, None, 100), task(1, None, None, 300)] };
        assert!((critical_path(&g) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn chain_cp_is_sum() {
        let g = TraceGraph {
            tasks: vec![
                task(0, None, None, 100),
                task(1, None, Some(0), 100),
                task(2, None, Some(1), 100),
            ],
        };
        assert!((critical_path(&g) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn parent_edges_count_from_parent_start() {
        // Child issued inside the parent overlaps it entirely.
        let g = TraceGraph { tasks: vec![task(0, None, None, 100), task(1, Some(0), None, 50)] };
        assert!((critical_path(&g) - 0.1).abs() < 1e-9);
        // A long child extends past the parent.
        let g = TraceGraph { tasks: vec![task(0, None, None, 100), task(1, Some(0), None, 500)] };
        assert!((critical_path(&g) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_uses_cores() {
        let g = TraceGraph { tasks: (0..8).map(|i| task(i, None, None, 100)).collect() };
        let params = SimParams {
            cluster: ClusterConfig {
                nodes: 1,
                cores_per_node: 2,
                link_latency: 0.0,
                bandwidth: f64::INFINITY,
                cpu_speed: 1.0,
            },
            middleware: MiddlewareProfile::local(),
            placement: Placement::AllOn(0),
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        };
        // 0.8 s of work on 2 cores: bound 0.4 s (critical path only 0.1 s).
        assert!((lower_bound(&g, &params) - 0.4).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::{ClusterConfig, MiddlewareProfile, Placement, SimParams};
    use crate::sim::simulate;
    use proptest::prelude::*;
    use weavepar_weave::trace::{TaskId, TaskRecord};
    use weavepar_weave::{ObjId, Signature};

    #[derive(Debug, Clone)]
    struct RandTask {
        after_offset: Option<u64>,
        target: u64,
        cost_ms: u64,
        async_spawn: bool,
        bytes: usize,
    }

    fn arb_trace() -> impl Strategy<Value = TraceGraph> {
        proptest::collection::vec(
            (proptest::option::of(1u64..4), 0u64..6, 0u64..50, proptest::bool::ANY, 0usize..10_000)
                .prop_map(|(after_offset, target, cost_ms, async_spawn, bytes)| RandTask {
                    after_offset,
                    target,
                    cost_ms,
                    async_spawn,
                    bytes,
                }),
            0..40,
        )
        .prop_map(|list| {
            let tasks = list
                .into_iter()
                .enumerate()
                .map(|(i, rt)| {
                    let id = i as u64;
                    let after = rt
                        .after_offset
                        .and_then(|off| id.checked_sub(off))
                        .filter(|_| id > 0)
                        .map(TaskId::from_raw);
                    TaskRecord {
                        id: TaskId::from_raw(id),
                        parent: None,
                        after,
                        signature: Signature::new("T", "m"),
                        target: Some(ObjId::from_raw(rt.target)),
                        async_spawn: rt.async_spawn,
                        issuer: 0,
                        args_bytes: rt.bytes,
                        ret_bytes: 0,
                        cost: Duration::from_millis(rt.cost_ms),
                        seq: id,
                    }
                })
                .collect();
            TraceGraph { tasks }
        })
    }

    fn arb_params() -> impl Strategy<Value = SimParams> {
        (1usize..5, 1usize..5, 0u32..3, prop_oneof![Just(0), Just(1), Just(2)]).prop_map(
            |(nodes, cores, mw, _)| {
                let middleware = match mw {
                    0 => MiddlewareProfile::local(),
                    1 => MiddlewareProfile::mpp(),
                    _ => MiddlewareProfile::rmi(),
                };
                SimParams {
                    cluster: ClusterConfig {
                        nodes,
                        cores_per_node: cores,
                        link_latency: 50e-6,
                        bandwidth: 1e8,
                        cpu_speed: 1.0,
                    },
                    middleware,
                    placement: Placement::RoundRobin { nodes },
                    client_node: 0,
                    cpu_inflation: 1.0,
                    packing: None,
                }
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The schedule never beats the communication-free lower bound.
        #[test]
        fn makespan_respects_lower_bound(trace in arb_trace(), params in arb_params()) {
            let r = simulate(&trace, &params);
            prop_assert!(r.makespan + 1e-9 >= lower_bound(&trace, &params),
                "makespan {} < bound {}", r.makespan, lower_bound(&trace, &params));
        }

        /// Every task executes; busy time equals total work plus receive
        /// overheads (per-call demarshalling CPU plus per-byte marshalling).
        #[test]
        fn work_conservation(trace in arb_trace(), params in arb_params()) {
            let r = simulate(&trace, &params);
            prop_assert_eq!(r.tasks, trace.len());
            let busy: f64 = r.busy.iter().sum();
            let min_work = trace.total_cost().as_secs_f64();
            prop_assert!(busy + 1e-9 >= min_work);
            let max_overhead = trace
                .tasks
                .iter()
                .map(|t| params.middleware.recv_cpu + params.middleware.marshal_cpu(t.args_bytes))
                .sum::<f64>();
            prop_assert!(busy <= min_work + max_overhead + 1e-9);
        }

        /// Replay is deterministic.
        #[test]
        fn determinism(trace in arb_trace(), params in arb_params()) {
            prop_assert_eq!(simulate(&trace, &params), simulate(&trace, &params));
        }

        /// Adding nodes (with round-robin placement) never *increases* the
        /// total amount of work executed, and utilisation stays in [0, 1].
        #[test]
        fn utilization_is_a_fraction(trace in arb_trace(), params in arb_params()) {
            let r = simulate(&trace, &params);
            let u = r.utilization(params.cluster.total_cores());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }

        /// Communication-free single-node replays: middleware constants are
        /// irrelevant, so MPP and RMI coincide exactly (no Graham anomalies
        /// are possible without messages).
        #[test]
        fn middleware_is_irrelevant_on_one_node(trace in arb_trace()) {
            let mk = |mw: MiddlewareProfile| SimParams {
                cluster: ClusterConfig { nodes: 1, cores_per_node: 3, link_latency: 0.0, bandwidth: f64::INFINITY, cpu_speed: 1.0 },
                middleware: mw,
                placement: Placement::AllOn(0),
                client_node: 0,
                cpu_inflation: 1.0,
                packing: None,
            };
            let a = simulate(&trace, &mk(MiddlewareProfile::mpp()));
            let b = simulate(&trace, &mk(MiddlewareProfile::rmi()));
            prop_assert_eq!(a, b);
        }
    }
}
