//! Simulation parameters: cluster hardware, middleware cost profiles and
//! object placement policies.

use std::collections::HashMap;

use weavepar_weave::ObjId;

/// Hardware model: homogeneous nodes on a symmetric interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Schedulable cores per node.
    pub cores_per_node: usize,
    /// One-way wire latency per message, seconds.
    pub link_latency: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Relative CPU speed (1.0 = the speed the trace costs were recorded or
    /// modelled at). Task costs are divided by this.
    pub cpu_speed: f64,
}

impl ClusterConfig {
    /// The paper's testbed: 7 dedicated dual-processor Xeon 3.2 GHz nodes
    /// with Hyper-Threading (≈ 4 schedulable contexts each), Gigabit
    /// Ethernet. Trace costs are expected to be calibrated to this CPU, so
    /// `cpu_speed` is 1.
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            nodes: 7,
            cores_per_node: 4,
            link_latency: 60e-6,
            bandwidth: 117e6, // ~ GigE payload rate
            cpu_speed: 1.0,
        }
    }

    /// A single shared-memory machine (the paper's FarmThreads target): one
    /// dual-Xeon HT node, no network.
    pub fn single_node() -> Self {
        ClusterConfig {
            nodes: 1,
            cores_per_node: 4,
            link_latency: 0.0,
            bandwidth: f64::INFINITY,
            cpu_speed: 1.0,
        }
    }

    /// Custom node/core count with the paper's interconnect.
    pub fn with_nodes(nodes: usize, cores_per_node: usize) -> Self {
        ClusterConfig { nodes, cores_per_node, ..Self::paper_cluster() }
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

/// Per-call middleware costs layered on top of the raw interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct MiddlewareProfile {
    /// Display name.
    pub name: &'static str,
    /// Sender-side CPU per call (marshalling, stub dispatch), seconds.
    pub send_cpu: f64,
    /// Receiver-side CPU per call (demarshalling, skeleton dispatch), seconds.
    pub recv_cpu: f64,
    /// Protocol latency added to each cross-node call (connection handling,
    /// protocol round trips), seconds.
    pub call_latency: f64,
    /// Marshalling throughput, bytes per second of CPU on each side — the
    /// dominant cost difference between Java serialisation (RMI) and raw
    /// `nio` buffers (MPP) for large argument arrays.
    pub ser_bandwidth: f64,
}

impl MiddlewareProfile {
    /// Java-RMI-like: heavyweight serialisation and per-call protocol work.
    /// Constants follow published RMI micro-benchmarks of the JDK 1.5 era
    /// (hundreds of microseconds per call on GigE).
    pub fn rmi() -> Self {
        MiddlewareProfile {
            name: "RMI",
            send_cpu: 140e-6,
            recv_cpu: 140e-6,
            call_latency: 420e-6,
            ser_bandwidth: 60e6,
        }
    }

    /// MPP-like (`java.nio` message passing): thin framing over sockets.
    pub fn mpp() -> Self {
        MiddlewareProfile {
            name: "MPP",
            send_cpu: 30e-6,
            recv_cpu: 30e-6,
            call_latency: 80e-6,
            ser_bandwidth: 300e6,
        }
    }

    /// In-process calls: no middleware at all (shared-memory threads).
    pub fn local() -> Self {
        MiddlewareProfile {
            name: "local",
            send_cpu: 0.0,
            recv_cpu: 0.0,
            call_latency: 0.0,
            ser_bandwidth: f64::INFINITY,
        }
    }

    /// Sender- or receiver-side CPU to marshal `bytes`.
    pub fn marshal_cpu(&self, bytes: usize) -> f64 {
        if self.ser_bandwidth.is_finite() {
            bytes as f64 / self.ser_bandwidth
        } else {
            0.0
        }
    }
}

/// Maps objects to nodes — the paper's "distribution aspect is also
/// responsible for the selection of the most adequate node" (§4.3).
#[derive(Debug, Clone)]
pub enum Placement {
    /// Everything on one node (shared-memory configurations).
    AllOn(usize),
    /// Object `k` (in id order) on node `k mod nodes`.
    RoundRobin {
        /// Number of nodes to spread over.
        nodes: usize,
    },
    /// Explicit per-object mapping; unmapped objects fall back to node 0.
    ByObject(HashMap<ObjId, usize>),
}

impl Placement {
    /// Node hosting `obj`.
    pub fn node_of(&self, obj: ObjId) -> usize {
        match self {
            Placement::AllOn(node) => *node,
            Placement::RoundRobin { nodes } => (obj.raw() % (*nodes).max(1) as u64) as usize,
            Placement::ByObject(map) => map.get(&obj).copied().unwrap_or(0),
        }
    }
}

/// Wire-level message packing (the §4.4 communication-packing aspect,
/// realised by `weavepar-middleware`'s `CallPack` frames): consecutive
/// asynchronous client calls to the same node coalesce into one framed
/// message, paying one protocol round and one per-message receive cost for
/// the whole pack instead of per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackingModel {
    /// Maximum calls coalesced into one frame.
    pub max_pack: usize,
    /// Frame envelope overhead (count word + per-entry headers), bytes.
    pub header_bytes: usize,
}

impl PackingModel {
    /// The middleware's `PackFrame` layout: a 4-byte count word plus a
    /// 16-byte `obj | method | args_len` header per entry, here folded into
    /// a flat per-frame constant for a typical pack.
    pub fn call_pack(max_pack: usize) -> Self {
        PackingModel { max_pack: max_pack.max(1), header_bytes: 4 + 16 * max_pack.max(1) }
    }

    /// A [`call_pack`](Self::call_pack) model reading its pack size from a
    /// live tunable cell (e.g. the packer's `max_calls` cell bound to a
    /// tuning controller), so a replay models the pack granularity the tuner
    /// actually converged to rather than the static default.
    pub fn from_tuned(cell: &std::sync::atomic::AtomicU32) -> Self {
        Self::call_pack(cell.load(std::sync::atomic::Ordering::Relaxed) as usize)
    }
}

/// One node crashing at a virtual time, never to return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// The node that dies.
    pub node: usize,
    /// Virtual time of the crash, seconds.
    pub at: f64,
}

/// Deterministic node-failure schedule for degradation studies — the replay
/// analogue of the middleware's fault plan plus the supervisor aspect.
///
/// Semantics in [`simulate_with_faults`](crate::sim::simulate_with_faults):
/// a task that completes before its node's failure time keeps its result
/// (checkpoints are at task granularity, like the supervisor's per-pack
/// checkpoints); a task that would still be running — or start after — the
/// crash is re-dispatched to the next surviving node, paying
/// `redispatch_overhead` (detection plus worker reconstruction) and a fresh
/// argument shipment from the client's node. Partial work lost on the dead
/// node is not booked as busy time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    failures: Vec<NodeFailure>,
    /// Detection + recovery cost added to each re-dispatched task, seconds.
    pub redispatch_overhead: f64,
}

impl FaultTimeline {
    /// An empty timeline (no failures).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node crash at virtual time `at` seconds.
    pub fn kill(mut self, node: usize, at: f64) -> Self {
        self.failures.push(NodeFailure { node, at: at.max(0.0) });
        self
    }

    /// Set the per-re-dispatch detection/recovery cost.
    pub fn overhead(mut self, seconds: f64) -> Self {
        self.redispatch_overhead = seconds.max(0.0);
        self
    }

    /// The scheduled failures.
    pub fn failures(&self) -> &[NodeFailure] {
        &self.failures
    }

    /// Earliest failure time of `node`, if it ever dies.
    pub fn down_since(&self, node: usize) -> Option<f64> {
        self.failures.iter().filter(|f| f.node == node).map(|f| f.at).min_by(|a, b| a.total_cmp(b))
    }

    /// Whether `node` is dead at `time`.
    pub fn dead_at(&self, node: usize, time: f64) -> bool {
        self.down_since(node).is_some_and(|at| time >= at)
    }

    /// First node after `from` (cyclically) alive at `time`.
    pub fn next_alive(&self, from: usize, nodes: usize, time: f64) -> Option<usize> {
        let nodes = nodes.max(1);
        (1..=nodes).map(|k| (from + k) % nodes).find(|&n| !self.dead_at(n, time))
    }
}

/// Everything [`simulate`](crate::sim::simulate) needs besides the trace.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Hardware model.
    pub cluster: ClusterConfig,
    /// Middleware cost profile for cross-node calls.
    pub middleware: MiddlewareProfile,
    /// Object→node mapping.
    pub placement: Placement,
    /// Node the client (`main`) runs on.
    pub client_node: usize,
    /// Multiplier on every task's CPU cost, modelling the weaving runtime's
    /// dispatch overhead (measured by the `weaving_overhead` bench; 1.0 for
    /// the hand-coded baseline).
    pub cpu_inflation: f64,
    /// Wire-level packing of client-issued asynchronous calls; `None`
    /// replays every call as its own message.
    pub packing: Option<PackingModel>,
}

impl SimParams {
    /// Parameters for a shared-memory threads run (no middleware).
    pub fn threads_on_single_node() -> Self {
        SimParams {
            cluster: ClusterConfig::single_node(),
            middleware: MiddlewareProfile::local(),
            placement: Placement::AllOn(0),
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        }
    }

    /// Parameters for a paper-cluster run over the given middleware.
    pub fn paper_cluster(middleware: MiddlewareProfile) -> Self {
        let cluster = ClusterConfig::paper_cluster();
        let nodes = cluster.nodes;
        SimParams {
            cluster,
            middleware,
            placement: Placement::RoundRobin { nodes },
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        }
    }

    /// The same parameters with wire-level packing switched on.
    pub fn with_packing(mut self, packing: PackingModel) -> Self {
        self.packing = Some(packing);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.nodes, 7);
        assert_eq!(c.total_cores(), 28);
        assert!(c.link_latency > 0.0);
    }

    #[test]
    fn single_node_has_no_network() {
        let c = ClusterConfig::single_node();
        assert_eq!(c.nodes, 1);
        assert_eq!(c.link_latency, 0.0);
        assert!(c.bandwidth.is_infinite());
    }

    #[test]
    fn middleware_cost_ordering() {
        let rmi = MiddlewareProfile::rmi();
        let mpp = MiddlewareProfile::mpp();
        let local = MiddlewareProfile::local();
        assert!(rmi.call_latency > mpp.call_latency, "RMI must cost more than MPP");
        assert!(rmi.send_cpu > mpp.send_cpu);
        assert!(rmi.ser_bandwidth < mpp.ser_bandwidth, "RMI marshalling is slower");
        assert_eq!(local.call_latency, 0.0);
        assert_eq!(local.marshal_cpu(1_000_000), 0.0);
        assert!(rmi.marshal_cpu(400_000) > mpp.marshal_cpu(400_000));
    }

    #[test]
    fn placement_policies() {
        let all = Placement::AllOn(3);
        assert_eq!(all.node_of(ObjId::from_raw(42)), 3);

        let rr = Placement::RoundRobin { nodes: 4 };
        assert_eq!(rr.node_of(ObjId::from_raw(0)), 0);
        assert_eq!(rr.node_of(ObjId::from_raw(5)), 1);
        assert_eq!(rr.node_of(ObjId::from_raw(7)), 3);

        let mut map = HashMap::new();
        map.insert(ObjId::from_raw(9), 2usize);
        let by = Placement::ByObject(map);
        assert_eq!(by.node_of(ObjId::from_raw(9)), 2);
        assert_eq!(by.node_of(ObjId::from_raw(1)), 0, "unmapped falls back to node 0");
    }

    #[test]
    fn round_robin_zero_nodes_is_safe() {
        let rr = Placement::RoundRobin { nodes: 0 };
        assert_eq!(rr.node_of(ObjId::from_raw(5)), 0);
    }

    #[test]
    fn params_presets() {
        let t = SimParams::threads_on_single_node();
        assert_eq!(t.cluster.nodes, 1);
        assert_eq!(t.middleware.name, "local");
        let p = SimParams::paper_cluster(MiddlewareProfile::rmi());
        assert_eq!(p.cluster.nodes, 7);
        assert_eq!(p.middleware.name, "RMI");
        assert_eq!(p.packing, None, "packing is off by default");
    }

    #[test]
    fn fault_timeline_queries() {
        let ft = FaultTimeline::new().kill(1, 0.5).kill(1, 0.2).kill(2, 1.0).overhead(0.01);
        assert_eq!(ft.down_since(1), Some(0.2), "earliest failure wins");
        assert_eq!(ft.down_since(0), None);
        assert!(ft.dead_at(1, 0.2));
        assert!(!ft.dead_at(1, 0.1));
        assert_eq!(ft.next_alive(1, 3, 0.3), Some(2), "node 2 still alive at 0.3");
        assert_eq!(ft.next_alive(1, 3, 2.0), Some(0), "only node 0 survives late");
        assert_eq!(ft.redispatch_overhead, 0.01);
        assert_eq!(ft.failures().len(), 3);
        assert_eq!(FaultTimeline::new().next_alive(0, 2, 0.0), Some(1));
    }

    #[test]
    fn packing_model_matches_pack_frame_layout() {
        let pk = PackingModel::call_pack(64);
        assert_eq!(pk.max_pack, 64);
        assert_eq!(pk.header_bytes, 4 + 16 * 64);
        assert_eq!(PackingModel::call_pack(0).max_pack, 1, "degenerate pack clamps to 1");
        let p = SimParams::paper_cluster(MiddlewareProfile::mpp()).with_packing(pk);
        assert_eq!(p.packing, Some(pk));
    }

    #[test]
    fn packing_model_follows_a_tuned_cell() {
        let cell = std::sync::atomic::AtomicU32::new(16);
        assert_eq!(PackingModel::from_tuned(&cell), PackingModel::call_pack(16));
        cell.store(32, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(PackingModel::from_tuned(&cell).max_pack, 32);
        cell.store(0, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(PackingModel::from_tuned(&cell).max_pack, 1, "unset cell clamps to 1");
    }
}
