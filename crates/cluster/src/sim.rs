//! The discrete-event replay engine.
//!
//! ## Replay semantics
//!
//! The trace is a DAG of *tasks* (base method executions) with three kinds of
//! ordering constraints, all of which were true of the recorded execution:
//!
//! 1. **Client order** — tasks with no parent were issued by the client
//!    (`main`) in `seq` order. A synchronous root blocks the client until its
//!    completion (plus the reply transfer); an asynchronous root only costs
//!    the client the send overhead.
//! 2. **`after` edges** — the task was issued by a logical flow on which the
//!    `after` task had already completed (pipeline forwarding). The
//!    arguments travel as a message from the `after` task's node.
//! 3. **`parent` edges** — the task was issued from within the parent's
//!    method body; it cannot become ready before the parent started.
//!
//! Tasks execute on one core of the node hosting their target object; tasks
//! sharing a target serialise (per-object monitors). Cross-node messages pay
//! `middleware.send_cpu` on the sender, `call_latency + link_latency +
//! bytes/bandwidth` in flight, and `middleware.recv_cpu` on the receiver's
//! core before the task body.
//!
//! The engine pops ready tasks in `(ready_time, seq)` order, which yields a
//! deterministic FIFO schedule: ready times only ever resolve to values no
//! smaller than the ready time of the task whose completion resolved them, so
//! the pop sequence is monotone in time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use weavepar_weave::trace::{TaskId, TraceGraph};
use weavepar_weave::ObjId;

use crate::config::{FaultTimeline, SimParams};
use crate::report::SimReport;

/// Total-ordered f64 for use in heaps (simulation times are finite and
/// non-negative).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Engine<'a> {
    trace: &'a TraceGraph,
    params: &'a SimParams,
    node_of_task: Vec<usize>,
    cost_of_task: Vec<f64>,
    // Constraint bookkeeping.
    client_ready: Vec<Option<f64>>,
    after_ready: Vec<Option<f64>>,
    parent_ready: Vec<Option<f64>>,
    needs_client: Vec<bool>,
    pushed: Vec<bool>,
    recv_extra: Vec<f64>,
    waiting_on_after: HashMap<TaskId, Vec<TaskId>>,
    waiting_on_parent: HashMap<TaskId, Vec<TaskId>>,
    child_rank: Vec<usize>,
    // Engine state.
    ready_heap: BinaryHeap<Reverse<(Time, u64, u64)>>,
    core_free: Vec<BinaryHeap<Reverse<Time>>>,
    // One marshalling/send pipe per node: cross-node sends from the same
    // node serialise (one CPU+NIC funnel), which is where heavyweight
    // serialisation actually hurts a client fanning out many packs.
    sender_free: Vec<f64>,
    object_free: HashMap<ObjId, f64>,
    start: Vec<Option<f64>>,
    end: Vec<Option<f64>>,
    busy: Vec<f64>,
    messages: usize,
    bytes: usize,
    // Failure model (None = faithful cluster).
    faults: Option<&'a FaultTimeline>,
    redispatched: usize,
    client_clock: f64,
    client_blocked_on: Option<TaskId>,
    roots: Vec<TaskId>,
    next_root: usize,
}

/// Interval between consecutive issues from the same parent task, seconds.
/// Models the (small) cost of the aspect code that loops issuing calls.
const ISSUE_STAGGER: f64 = 1e-6;

impl<'a> Engine<'a> {
    fn new(trace: &'a TraceGraph, params: &'a SimParams) -> Self {
        let n = trace.len();
        let node_of_task: Vec<usize> = trace
            .tasks
            .iter()
            .map(|t| t.target.map(|o| params.placement.node_of(o)).unwrap_or(params.client_node))
            .collect();
        let speed = params.cluster.cpu_speed.max(1e-12);
        let cost_of_task: Vec<f64> = trace
            .tasks
            .iter()
            .map(|t| t.cost.as_secs_f64() * params.cpu_inflation / speed)
            .collect();

        let main_thread = trace.main_thread().unwrap_or(0);
        let mut waiting_on_after: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
        let mut waiting_on_parent: HashMap<TaskId, Vec<TaskId>> = HashMap::new();
        let mut child_counter: HashMap<TaskId, usize> = HashMap::new();
        let mut child_rank = vec![0usize; n];
        let mut roots = Vec::new();
        for t in &trace.tasks {
            if let Some(a) = t.after {
                waiting_on_after.entry(a).or_default().push(t.id);
            }
            if let Some(p) = t.parent {
                waiting_on_parent.entry(p).or_default().push(t.id);
                let rank = child_counter.entry(p).or_insert(0);
                child_rank[t.id.raw() as usize] = *rank;
                *rank += 1;
            } else if t.issuer == main_thread {
                // Issued by the client's main thread: sequenced by the
                // client timeline.
                roots.push(t.id);
            }
        }
        roots.sort_by_key(|id| trace.get(*id).map(|t| t.seq).unwrap_or(u64::MAX));

        let cores = params.cluster.cores_per_node.max(1);
        let core_free = (0..params.cluster.nodes.max(1))
            .map(|_| (0..cores).map(|_| Reverse(Time(0.0))).collect())
            .collect();

        Engine {
            trace,
            params,
            node_of_task,
            cost_of_task,
            client_ready: vec![None; n],
            after_ready: vec![None; n],
            parent_ready: vec![None; n],
            needs_client: trace
                .tasks
                .iter()
                .map(|t| t.parent.is_none() && t.issuer == main_thread)
                .collect(),
            pushed: vec![false; n],
            recv_extra: vec![0.0; n],
            waiting_on_after,
            waiting_on_parent,
            child_rank,
            ready_heap: BinaryHeap::new(),
            core_free,
            sender_free: vec![0.0; params.cluster.nodes.max(1)],
            object_free: HashMap::new(),
            start: vec![None; n],
            end: vec![None; n],
            busy: vec![0.0; params.cluster.nodes.max(1)],
            messages: 0,
            bytes: 0,
            faults: None,
            redispatched: 0,
            client_clock: 0.0,
            client_blocked_on: None,
            roots,
            next_root: 0,
        }
    }

    fn with_faults(mut self, faults: &'a FaultTimeline) -> Self {
        self.faults = Some(faults);
        self
    }

    /// One-way in-flight delay between nodes.
    fn hop(&self, from: usize, to: usize, bytes: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let c = &self.params.cluster;
        let m = &self.params.middleware;
        let transfer = if c.bandwidth.is_finite() { bytes as f64 / c.bandwidth } else { 0.0 };
        m.call_latency + c.link_latency + transfer
    }

    fn idx(&self, id: TaskId) -> usize {
        id.raw() as usize
    }

    /// Occupy `from`'s send pipe for a cross-node message of `bytes`,
    /// starting no earlier than `earliest`; returns the send completion time
    /// (when the message is on the wire). No-op for local delivery.
    fn send_slot(&mut self, from: usize, to: usize, earliest: f64, bytes: usize) -> f64 {
        if from == to {
            return earliest;
        }
        let cost = self.params.middleware.send_cpu + self.params.middleware.marshal_cpu(bytes);
        let start = earliest.max(self.sender_free[from]);
        let end = start + cost;
        self.sender_free[from] = end;
        end
    }

    /// Push `id` to the ready heap once all its constraints are resolved.
    fn maybe_push(&mut self, id: TaskId) {
        let i = self.idx(id);
        if self.pushed[i] {
            return;
        }
        let t = &self.trace.tasks[i];
        if self.needs_client[i] && self.client_ready[i].is_none() {
            return;
        }
        if t.after.is_some() && self.after_ready[i].is_none() {
            return;
        }
        if t.parent.is_some() && self.parent_ready[i].is_none() {
            return;
        }
        let ready = self.client_ready[i]
            .into_iter()
            .chain(self.after_ready[i])
            .chain(self.parent_ready[i])
            .fold(0.0f64, f64::max);
        self.pushed[i] = true;
        self.ready_heap.push(Reverse((Time(ready), t.seq, id.raw())));
    }

    /// Record a message (or local call) from `from` delivering `bytes` for
    /// task `i`; returns the delay and marks cross-node receive overhead.
    fn deliver(&mut self, from: usize, id: TaskId, bytes: usize) -> f64 {
        let i = self.idx(id);
        let to = self.node_of_task[i];
        if from != to {
            self.messages += 1;
            self.bytes += bytes;
            self.recv_extra[i] =
                self.params.middleware.recv_cpu + self.params.middleware.marshal_cpu(bytes);
        }
        self.hop(from, to, bytes)
    }

    /// Let the client issue roots until it blocks or runs out. With a
    /// [`PackingModel`](crate::config::PackingModel) configured, consecutive
    /// asynchronous roots bound for the same remote node coalesce into one
    /// framed message: one send-pipe occupation for the summed payload plus
    /// the frame header, one hop, one message on the wire and one per-message
    /// receive cost — each task still pays the demarshalling of its own
    /// arguments on the receiver.
    fn client_issue(&mut self) {
        while self.client_blocked_on.is_none() && self.next_root < self.roots.len() {
            let id = self.roots[self.next_root];
            let i = self.idx(id);
            let to = self.node_of_task[i];
            let t = &self.trace.tasks[i];
            let (async_spawn, args_bytes) = (t.async_spawn, t.args_bytes);
            let from = self.params.client_node;
            let packed = self
                .params
                .packing
                .filter(|_| async_spawn && to != from)
                .map(|pk| (pk.max_pack.max(1), pk.header_bytes));
            if let Some((max_pack, header_bytes)) = packed {
                // Gather the run of consecutive async roots to the same node.
                let mut frame = vec![id];
                let mut payload = args_bytes;
                while frame.len() < max_pack && self.next_root + frame.len() < self.roots.len() {
                    let next = self.roots[self.next_root + frame.len()];
                    let ni = self.idx(next);
                    let nt = &self.trace.tasks[ni];
                    if !nt.async_spawn || self.node_of_task[ni] != to {
                        break;
                    }
                    payload += nt.args_bytes;
                    frame.push(next);
                }
                self.next_root += frame.len();
                let total = payload + header_bytes;
                let sent = self.send_slot(from, to, self.client_clock, total);
                self.client_clock = sent;
                self.messages += 1;
                self.bytes += total;
                let delay = self.hop(from, to, total);
                for (k, fid) in frame.into_iter().enumerate() {
                    let fi = self.idx(fid);
                    let own = self.trace.tasks[fi].args_bytes;
                    self.recv_extra[fi] = self.params.middleware.marshal_cpu(own)
                        + if k == 0 { self.params.middleware.recv_cpu } else { 0.0 };
                    self.client_ready[fi] = Some(sent + delay);
                    self.maybe_push(fid);
                }
            } else {
                self.next_root += 1;
                let sent = self.send_slot(from, to, self.client_clock, args_bytes);
                self.client_clock = sent;
                let delay = self.deliver(from, id, args_bytes);
                self.client_ready[i] = Some(self.client_clock + delay);
                self.maybe_push(id);
                if !async_spawn {
                    self.client_blocked_on = Some(id);
                }
            }
        }
    }

    /// Schedule the next ready task; returns false when the heap is empty.
    fn step(&mut self) -> bool {
        let Some(Reverse((Time(mut ready), _seq, raw))) = self.ready_heap.pop() else {
            return false;
        };
        let id = TaskId::from_raw(raw);
        let i = self.idx(id);
        let mut node = self.node_of_task[i];
        // Node-failure model: a task that cannot finish on its node before
        // that node's crash is re-dispatched to the next survivor — the
        // replay analogue of the supervisor aspect's recovery. A task that
        // completes before the crash keeps its result (checkpointing is at
        // task granularity, like the supervisor's per-pack checkpoints).
        if let Some(ft) = self.faults {
            let nodes = self.params.cluster.nodes.max(1);
            let args_bytes = self.trace.tasks[i].args_bytes;
            let obj_at = self.trace.tasks[i]
                .target
                .and_then(|o| self.object_free.get(&o))
                .copied()
                .unwrap_or(0.0);
            // Bounded walk: a never-failing node always terminates it
            // (`simulate_with_faults` rejects all-dead timelines).
            for _ in 0..=nodes {
                let Some(at) = ft.down_since(node) else { break };
                let core_at = self.core_free[node].peek().map(|r| r.0 .0).unwrap_or(0.0);
                let start = ready.max(core_at).max(obj_at);
                if start + self.cost_of_task[i] + self.recv_extra[i] <= at {
                    break;
                }
                // Lost in flight (or queued on an already-dead node): the
                // loss is detected at the crash — immediately if the node
                // was already down — and the arguments are re-shipped from
                // the client's node to the next surviving node.
                let detect = ready.max(at);
                let Some(alt) = ft.next_alive(node, nodes, detect) else { break };
                self.redispatched += 1;
                self.messages += 1;
                self.bytes += args_bytes;
                ready = detect
                    + ft.redispatch_overhead
                    + self.hop(self.params.client_node, alt, args_bytes);
                node = alt;
                self.node_of_task[i] = alt;
            }
        }
        let t = &self.trace.tasks[i];

        let Reverse(Time(core_at)) = self.core_free[node].pop().expect("node has cores");
        let obj_at = t.target.and_then(|o| self.object_free.get(&o)).copied().unwrap_or(0.0);
        let start = ready.max(core_at).max(obj_at);
        let mut duration = self.cost_of_task[i];
        duration += self.recv_extra[i];
        let end = start + duration;
        self.core_free[node].push(Reverse(Time(end)));
        if let Some(o) = t.target {
            self.object_free.insert(o, end);
        }
        self.busy[node] += duration;
        self.start[i] = Some(start);
        self.end[i] = Some(end);

        // Resolve dependents whose constraint was this task's *start*.
        if let Some(children) = self.waiting_on_parent.remove(&id) {
            for child in children {
                let ci = self.idx(child);
                let c = &self.trace.tasks[ci];
                let stagger = (self.child_rank[ci] + 1) as f64 * ISSUE_STAGGER;
                let (to, args_bytes) = (self.node_of_task[ci], c.args_bytes);
                let sent = self.send_slot(node, to, start + stagger, args_bytes);
                let delay = self.deliver(node, child, args_bytes);
                self.parent_ready[ci] = Some(sent + delay);
                self.maybe_push(child);
            }
        }
        // Resolve dependents whose constraint was this task's *end*.
        if let Some(deps) = self.waiting_on_after.remove(&id) {
            for dep in deps {
                let di = self.idx(dep);
                let d = &self.trace.tasks[di];
                // The arguments travel with the *issuer* flow: only a
                // worker-issued task with no parent actually received its
                // message from here (pipeline forwarding); for client- or
                // parent-issued tasks the after edge is purely temporal.
                let carries_message = !self.needs_client[di] && d.parent.is_none();
                if carries_message {
                    let (to, args_bytes) = (self.node_of_task[di], d.args_bytes);
                    let sent = self.send_slot(node, to, end, args_bytes);
                    let delay = self.deliver(node, dep, args_bytes);
                    self.after_ready[di] = Some(sent + delay);
                } else {
                    self.after_ready[di] = Some(end);
                }
                self.maybe_push(dep);
            }
        }
        // Unblock the client when its synchronous call returns.
        if self.client_blocked_on == Some(id) {
            let cross = node != self.params.client_node;
            let mut resume = end;
            if cross {
                self.messages += 1;
                self.bytes += t.ret_bytes;
                resume += self.hop(node, self.params.client_node, t.ret_bytes)
                    + self.params.middleware.recv_cpu
                    + 2.0 * self.params.middleware.marshal_cpu(t.ret_bytes);
            }
            self.client_clock = self.client_clock.max(resume);
            self.client_blocked_on = None;
        }
        true
    }

    fn run(mut self) -> (SimReport, Schedule) {
        // Worker-issued tasks with no recorded predecessor (e.g. packs issued
        // by a split advice running in a spawned thread): issued near time
        // zero from the client's node, staggered by issue order.
        for i in 0..self.trace.len() {
            let t = &self.trace.tasks[i];
            if !self.needs_client[i] && t.parent.is_none() && t.after.is_none() {
                let id = t.id;
                let floor = t.seq as f64 * ISSUE_STAGGER;
                let (to, args_bytes) = (self.node_of_task[i], t.args_bytes);
                let sent = self.send_slot(self.params.client_node, to, floor, args_bytes);
                let delay = self.deliver(self.params.client_node, id, args_bytes);
                self.client_ready[i] = Some(sent + delay);
                self.maybe_push(id);
            }
        }
        loop {
            self.client_issue();
            if !self.step() {
                break;
            }
        }
        debug_assert!(
            self.start.iter().all(Option::is_some) || self.trace.is_empty(),
            "trace contains tasks whose constraints never resolved"
        );
        let makespan = self.end.iter().flatten().copied().fold(self.client_clock, f64::max);
        let entries = self
            .trace
            .tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                Some(ScheduledTask {
                    id: t.id,
                    signature: t.signature,
                    node: self.node_of_task[i],
                    start: self.start[i]?,
                    end: self.end[i]?,
                })
            })
            .collect();
        let report = SimReport {
            makespan,
            total_work: self.cost_of_task.iter().sum(),
            busy: self.busy,
            messages: self.messages,
            bytes: self.bytes,
            tasks: self.trace.len(),
            redispatched: self.redispatched,
            client_done: self.client_clock,
        };
        (report, Schedule { entries })
    }
}

/// When and where one task executed in a replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledTask {
    /// The task.
    pub id: TaskId,
    /// Its join-point signature.
    pub signature: weavepar_weave::Signature,
    /// Node it executed on.
    pub node: usize,
    /// Virtual start time, seconds.
    pub start: f64,
    /// Virtual end time, seconds.
    pub end: f64,
}

/// The full schedule of a replay, in task-id order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    /// One entry per executed task.
    pub entries: Vec<ScheduledTask>,
}

impl Schedule {
    /// Entries executed on `node`, in start order.
    pub fn on_node(&self, node: usize) -> Vec<ScheduledTask> {
        let mut v: Vec<ScheduledTask> =
            self.entries.iter().copied().filter(|e| e.node == node).collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Maximum number of tasks overlapping in time anywhere in the cluster
    /// (a replay-level parallelism measure).
    pub fn peak_parallelism(&self) -> usize {
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(self.entries.len() * 2);
        for e in &self.entries {
            events.push((e.start, 1));
            events.push((e.end, -1));
        }
        // Ends sort before starts at equal times, so touching intervals do
        // not count as overlapping.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut current, mut peak) = (0i64, 0i64);
        for (_, delta) in events {
            current += delta;
            peak = peak.max(current);
        }
        peak.max(0) as usize
    }

    /// A compact per-node text timeline (debugging aid).
    pub fn render(&self, nodes: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for node in 0..nodes {
            let entries = self.on_node(node);
            let _ = write!(out, "node {node}: ");
            for e in entries.iter().take(12) {
                let _ = write!(out, "[{} {:.3}-{:.3}] ", e.id, e.start, e.end);
            }
            if entries.len() > 12 {
                let _ = write!(out, "... ({} tasks)", entries.len());
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Replay `trace` under `params` and report the virtual schedule.
pub fn simulate(trace: &TraceGraph, params: &SimParams) -> SimReport {
    Engine::new(trace, params).run().0
}

/// Like [`simulate`], additionally returning the per-task [`Schedule`].
pub fn simulate_schedule(trace: &TraceGraph, params: &SimParams) -> (SimReport, Schedule) {
    Engine::new(trace, params).run()
}

/// Replay `trace` under `params` with a node-failure schedule: every task
/// that cannot finish on its node before the node's crash is re-dispatched
/// to the next surviving node, paying the timeline's detection/recovery
/// overhead plus a fresh argument shipment (see
/// [`FaultTimeline`](crate::config::FaultTimeline)). The report's
/// `redispatched` counts those recoveries.
///
/// Fails if the timeline eventually kills every node — with nobody left to
/// re-dispatch onto, the replay could not complete.
pub fn simulate_with_faults(
    trace: &TraceGraph,
    params: &SimParams,
    faults: &FaultTimeline,
) -> weavepar_weave::WeaveResult<SimReport> {
    let nodes = params.cluster.nodes.max(1);
    if (0..nodes).all(|n| faults.down_since(n).is_some()) {
        return Err(weavepar_weave::WeaveError::remote(
            "fault timeline kills every node; no survivor to re-dispatch onto",
        ));
    }
    Ok(Engine::new(trace, params).with_faults(faults).run().0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, FaultTimeline, MiddlewareProfile, Placement};
    use std::time::Duration;
    use weavepar_weave::trace::TaskRecord;
    use weavepar_weave::Signature;

    /// Test-side builder for synthetic traces.
    pub(crate) struct TraceBuilder {
        tasks: Vec<TaskRecord>,
    }

    impl TraceBuilder {
        pub fn new() -> Self {
            TraceBuilder { tasks: Vec::new() }
        }

        #[allow(clippy::too_many_arguments)]
        pub fn task_with_issuer(
            &mut self,
            parent: Option<u64>,
            after: Option<u64>,
            target: u64,
            cost_ms: u64,
            async_spawn: bool,
            args_bytes: usize,
            issuer: u64,
        ) -> u64 {
            let id = self.tasks.len() as u64;
            self.tasks.push(TaskRecord {
                id: TaskId::from_raw(id),
                parent: parent.map(TaskId::from_raw),
                after: after.map(TaskId::from_raw),
                signature: Signature::new("T", "m"),
                target: Some(ObjId::from_raw(target)),
                async_spawn,
                issuer,
                args_bytes,
                ret_bytes: 0,
                cost: Duration::from_millis(cost_ms),
                seq: id,
            });
            id
        }

        /// Client-issued task (issuer = main thread 0).
        #[allow(clippy::too_many_arguments)]
        pub fn task(
            &mut self,
            parent: Option<u64>,
            after: Option<u64>,
            target: u64,
            cost_ms: u64,
            async_spawn: bool,
            args_bytes: usize,
        ) -> u64 {
            self.task_with_issuer(parent, after, target, cost_ms, async_spawn, args_bytes, 0)
        }

        /// Worker-issued forwarded task (pipeline hop).
        pub fn forwarded(
            &mut self,
            after: u64,
            target: u64,
            cost_ms: u64,
            args_bytes: usize,
        ) -> u64 {
            self.task_with_issuer(None, Some(after), target, cost_ms, true, args_bytes, 1)
        }

        pub fn build(self) -> TraceGraph {
            TraceGraph { tasks: self.tasks }
        }
    }

    fn local_params(nodes: usize, cores: usize) -> SimParams {
        SimParams {
            cluster: ClusterConfig {
                nodes,
                cores_per_node: cores,
                link_latency: 0.0,
                bandwidth: f64::INFINITY,
                cpu_speed: 1.0,
            },
            middleware: MiddlewareProfile::local(),
            placement: Placement::RoundRobin { nodes },
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        }
    }

    #[test]
    fn empty_trace_is_instant() {
        let r = simulate(&TraceGraph::default(), &local_params(1, 1));
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.tasks, 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn sequential_sync_roots_add_up() {
        let mut b = TraceBuilder::new();
        for _ in 0..3 {
            b.task(None, None, 0, 100, false, 0);
        }
        let r = simulate(&b.build(), &local_params(1, 4));
        assert!((r.makespan - 0.3).abs() < 1e-6, "sync roots must serialise: {}", r.makespan);
    }

    #[test]
    fn async_roots_on_distinct_objects_run_in_parallel() {
        let mut b = TraceBuilder::new();
        for o in 0..4 {
            b.task(None, None, o, 100, true, 0);
        }
        let r = simulate(&b.build(), &local_params(1, 4));
        assert!(r.makespan < 0.11, "async roots must overlap: {}", r.makespan);
    }

    #[test]
    fn same_object_serialises_despite_async() {
        let mut b = TraceBuilder::new();
        for _ in 0..4 {
            b.task(None, None, 7, 100, true, 0);
        }
        let r = simulate(&b.build(), &local_params(1, 4));
        assert!((r.makespan - 0.4).abs() < 1e-3, "monitor must serialise: {}", r.makespan);
    }

    #[test]
    fn core_limit_caps_parallelism() {
        let mut b = TraceBuilder::new();
        for o in 0..8 {
            b.task(None, None, o, 100, true, 0);
        }
        // 8 × 100 ms of work on 2 cores ⇒ at least 400 ms.
        let r = simulate(&b.build(), &local_params(1, 2));
        assert!(r.makespan >= 0.4 - 1e-9, "2 cores can't do 0.8s of work in {}", r.makespan);
        assert!(r.makespan < 0.45);
    }

    #[test]
    fn after_chain_forms_a_pipeline() {
        // Two packs flowing through a 2-stage pipeline (objects 0, 1):
        // pack A: t0 on obj0, then t1 on obj1 (after t0)
        // pack B: t2 on obj0, then t3 on obj1 (after t2)
        let mut b = TraceBuilder::new();
        let t0 = b.task(None, None, 0, 100, true, 0);
        let _t1 = b.forwarded(t0, 1, 100, 0);
        let t2 = b.task(None, None, 0, 100, true, 0);
        let _t3 = b.forwarded(t2, 1, 100, 0);
        let r = simulate(&b.build(), &local_params(1, 4));
        // Ideal pipeline: stage overlap ⇒ 300 ms, not 400.
        assert!((r.makespan - 0.3).abs() < 1e-3, "pipeline should overlap: {}", r.makespan);
    }

    #[test]
    fn cross_node_messages_cost_latency_and_bandwidth() {
        let mut b = TraceBuilder::new();
        let t0 = b.task(None, None, 0, 0, true, 0);
        b.forwarded(t0, 1, 0, 1_000_000);
        let trace = b.build();
        let mut p = SimParams {
            cluster: ClusterConfig {
                nodes: 2,
                cores_per_node: 1,
                link_latency: 0.001,
                bandwidth: 1e6,
                cpu_speed: 1.0,
            },
            middleware: MiddlewareProfile {
                name: "t",
                send_cpu: 0.0,
                recv_cpu: 0.0,
                call_latency: 0.0,
                ser_bandwidth: f64::INFINITY,
            },
            placement: Placement::RoundRobin { nodes: 2 },
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        };
        let r = simulate(&trace, &p);
        // 1 MB at 1 MB/s + 1 ms latency ≈ 1.001 s.
        assert!((r.makespan - 1.001).abs() < 1e-6, "{}", r.makespan);
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes, 1_000_000);

        // Same trace on one node: free.
        p.placement = Placement::AllOn(0);
        let r = simulate(&trace, &p);
        assert!(r.makespan < 1e-9);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn middleware_overheads_apply_per_call() {
        let mut b = TraceBuilder::new();
        b.task(None, None, 1, 0, false, 100);
        let params = SimParams {
            cluster: ClusterConfig {
                nodes: 2,
                cores_per_node: 1,
                link_latency: 0.0,
                bandwidth: f64::INFINITY,
                cpu_speed: 1.0,
            },
            middleware: MiddlewareProfile {
                name: "t",
                send_cpu: 0.010,
                recv_cpu: 0.020,
                call_latency: 0.050,
                ser_bandwidth: f64::INFINITY,
            },
            placement: Placement::RoundRobin { nodes: 2 },
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        };
        let r = simulate(&b.build(), &params);
        // send 10 ms + latency 50 ms + recv 20 ms, plus the (empty) reply:
        // latency 50 ms + client recv 20 ms ⇒ client resumes at 150 ms.
        assert!((r.client_done - 0.150).abs() < 1e-9, "{}", r.client_done);
        assert_eq!(r.messages, 2, "request and reply");
    }

    #[test]
    fn rmi_beats_mpp_never() {
        // A farm of 8 async calls to 4 remote objects; MPP must finish no
        // later than RMI under identical traces.
        let mut b = TraceBuilder::new();
        for i in 0..8 {
            b.task(None, None, 1 + (i % 4), 50, true, 10_000);
        }
        let trace = b.build();
        let mk = |mw: MiddlewareProfile| {
            let params = SimParams {
                cluster: ClusterConfig::paper_cluster(),
                middleware: mw,
                placement: Placement::RoundRobin { nodes: 5 },
                client_node: 0,
                cpu_inflation: 1.0,
                packing: None,
            };
            simulate(&trace, &params).makespan
        };
        assert!(mk(MiddlewareProfile::mpp()) <= mk(MiddlewareProfile::rmi()));
    }

    #[test]
    fn cpu_inflation_scales_work() {
        let mut b = TraceBuilder::new();
        b.task(None, None, 0, 100, false, 0);
        let trace = b.build();
        let mut p = local_params(1, 1);
        let base = simulate(&trace, &p).makespan;
        p.cpu_inflation = 1.05;
        let inflated = simulate(&trace, &p).makespan;
        assert!((inflated / base - 1.05).abs() < 1e-9);
    }

    #[test]
    fn cpu_speed_scales_work_inversely() {
        let mut b = TraceBuilder::new();
        b.task(None, None, 0, 100, false, 0);
        let trace = b.build();
        let mut p = local_params(1, 1);
        p.cluster.cpu_speed = 2.0;
        let r = simulate(&trace, &p);
        assert!((r.makespan - 0.05).abs() < 1e-9);
    }

    #[test]
    fn parent_children_issue_during_parent() {
        let mut b = TraceBuilder::new();
        let p0 = b.task(None, None, 0, 100, true, 0);
        // Children on other objects, issued from within p0.
        b.task(Some(p0), None, 1, 100, true, 0);
        b.task(Some(p0), None, 2, 100, true, 0);
        let r = simulate(&b.build(), &local_params(1, 4));
        // Children start ~at p0's start, so everything overlaps: ~100 ms.
        assert!(r.makespan < 0.11, "{}", r.makespan);
    }

    #[test]
    fn busy_time_accounts_all_work() {
        let mut b = TraceBuilder::new();
        for o in 0..4 {
            b.task(None, None, o, 100, true, 0);
        }
        let r = simulate(&b.build(), &local_params(2, 2));
        let busy_total: f64 = r.busy.iter().sum();
        assert!((busy_total - 0.4).abs() < 1e-9);
        assert!(r.utilization(4) > 0.9);
    }

    #[test]
    fn schedule_reports_placement_and_times() {
        let mut b = TraceBuilder::new();
        let t0 = b.task(None, None, 0, 100, true, 0);
        let t1 = b.task(None, None, 1, 100, true, 0);
        let trace = b.build();
        let (report, schedule) = simulate_schedule(&trace, &local_params(2, 2));
        assert_eq!(schedule.entries.len(), 2);
        assert_eq!(schedule.entries[0].id, TaskId::from_raw(t0));
        assert_eq!(schedule.entries[0].node, 0);
        assert_eq!(schedule.entries[1].node, 1);
        assert!(schedule.entries.iter().all(|e| e.end <= report.makespan + 1e-12));
        assert_eq!(schedule.on_node(0).len(), 1);
        assert_eq!(schedule.peak_parallelism(), 2, "both tasks overlap");
        let t1_check = t1;
        let _ = t1_check;
        let text = schedule.render(2);
        assert!(text.contains("node 0:"));
        assert!(text.contains("node 1:"));
    }

    #[test]
    fn peak_parallelism_respects_serialisation() {
        let mut b = TraceBuilder::new();
        for _ in 0..4 {
            b.task(None, None, 7, 50, true, 0); // same object: monitor serialises
        }
        let (_, schedule) = simulate_schedule(&b.build(), &local_params(1, 4));
        assert_eq!(schedule.peak_parallelism(), 1);
    }

    fn remote_params(nodes: usize) -> SimParams {
        SimParams {
            cluster: ClusterConfig {
                nodes,
                cores_per_node: 4,
                link_latency: 0.001,
                bandwidth: 1e8,
                cpu_speed: 1.0,
            },
            middleware: MiddlewareProfile::mpp(),
            placement: Placement::RoundRobin { nodes },
            client_node: 0,
            cpu_inflation: 1.0,
            packing: None,
        }
    }

    #[test]
    fn packing_coalesces_consecutive_async_roots() {
        // 16 async roots, all on node 1 (odd targets under round-robin/2).
        let mut b = TraceBuilder::new();
        for k in 0..16u64 {
            b.task(None, None, 1 + 2 * k, 10, true, 100);
        }
        let trace = b.build();
        let unpacked = simulate(&trace, &remote_params(2));
        assert_eq!(unpacked.messages, 16);

        let pk = crate::config::PackingModel { max_pack: 8, header_bytes: 4 };
        let packed = simulate(&trace, &remote_params(2).with_packing(pk));
        assert_eq!(packed.messages, 2, "16 calls / pack of 8 = 2 frames");
        assert_eq!(packed.bytes, 16 * 100 + 2 * 4, "payload plus one header per frame");
        assert!(
            packed.makespan <= unpacked.makespan + 1e-12,
            "packing must not slow the replay: {} vs {}",
            packed.makespan,
            unpacked.makespan
        );
    }

    #[test]
    fn packing_runs_break_on_sync_and_destination() {
        // async×2 → node 1, sync → node 1, async×2 → node 1: the sync root
        // splits the run, so 2 frames + request + reply = 4 messages.
        let mut b = TraceBuilder::new();
        b.task(None, None, 1, 10, true, 50);
        b.task(None, None, 3, 10, true, 50);
        b.task(None, None, 5, 10, false, 50);
        b.task(None, None, 7, 10, true, 50);
        b.task(None, None, 9, 10, true, 50);
        let trace = b.build();
        let pk = crate::config::PackingModel::call_pack(8);
        let r = simulate(&trace, &remote_params(2).with_packing(pk));
        assert_eq!(r.messages, 4);

        // Alternating destinations never coalesce (frames keep issue order).
        let mut b = TraceBuilder::new();
        for k in 0..8u64 {
            b.task(None, None, 1 + k % 2, 10, true, 50); // nodes 1, 2, 1, 2 ...
        }
        let trace = b.build();
        let r = simulate(&trace, &remote_params(3).with_packing(pk));
        assert_eq!(r.messages, 8, "each run is length 1");
    }

    #[test]
    fn packing_ignores_local_roots() {
        // All targets on the client's node: no messages either way.
        let mut b = TraceBuilder::new();
        for k in 0..6u64 {
            b.task(None, None, 2 * k, 10, true, 50); // even targets → node 0
        }
        let trace = b.build();
        let pk = crate::config::PackingModel::call_pack(8);
        let r = simulate(&trace, &remote_params(2).with_packing(pk));
        assert_eq!(r.messages, 0);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn packing_off_matches_seed_behaviour() {
        let mut b = TraceBuilder::new();
        for k in 0..12u64 {
            b.task(None, None, k, 10, k % 3 != 0, 40 * k as usize);
        }
        let trace = b.build();
        let a = simulate(&trace, &remote_params(3));
        let bb = simulate(&trace, &remote_params(3));
        assert_eq!(a, bb, "packing: None stays deterministic and unchanged");
    }

    #[test]
    fn dead_node_tasks_are_redispatched_to_survivors() {
        // 4 async tasks on node 1 (odd targets under round-robin/2). Node 1
        // is dead from the start: everything re-dispatches to node 0 and the
        // replay still completes.
        let mut b = TraceBuilder::new();
        for k in 0..4u64 {
            b.task(None, None, 1 + 2 * k, 100, true, 0);
        }
        let trace = b.build();
        let p = local_params(2, 4);
        let ft = FaultTimeline::new().kill(1, 0.0);
        let r = simulate_with_faults(&trace, &p, &ft).unwrap();
        assert_eq!(r.redispatched, 4);
        assert!((r.busy[0] - 0.4).abs() < 1e-9, "all work landed on the survivor");
        assert_eq!(r.busy[1], 0.0, "the dead node did nothing");
        // The faithful replay is unchanged and reports zero re-dispatches.
        assert_eq!(simulate(&trace, &p).redispatched, 0);
    }

    #[test]
    fn mid_run_failure_loses_only_in_flight_work() {
        // Two 100 ms tasks serialised on one object on node 1; the node dies
        // at 150 ms. The first task's result survives (it completed before
        // the crash); the second is lost in flight and re-runs on node 0
        // after detection plus the recovery overhead.
        let mut b = TraceBuilder::new();
        b.task(None, None, 1, 100, true, 0);
        b.task(None, None, 1, 100, true, 0);
        let trace = b.build();
        let p = local_params(2, 4);
        let ft = FaultTimeline::new().kill(1, 0.15).overhead(0.01);
        let r = simulate_with_faults(&trace, &p, &ft).unwrap();
        assert_eq!(r.redispatched, 1, "only the in-flight task is lost");
        // Detection at 150 ms + 10 ms overhead + 100 ms re-run = 260 ms.
        assert!((r.makespan - 0.26).abs() < 1e-6, "{}", r.makespan);
    }

    #[test]
    fn empty_timeline_matches_faithful_replay() {
        let mut b = TraceBuilder::new();
        for i in 0..10 {
            b.task(None, None, i, 20, i % 2 == 0, 64);
        }
        let trace = b.build();
        let p = remote_params(3);
        let faithful = simulate(&trace, &p);
        let faulted = simulate_with_faults(&trace, &p, &FaultTimeline::new()).unwrap();
        assert_eq!(faithful, faulted);
    }

    #[test]
    fn all_dead_timeline_is_rejected() {
        let mut b = TraceBuilder::new();
        b.task(None, None, 0, 10, true, 0);
        let p = local_params(2, 1);
        let ft = FaultTimeline::new().kill(0, 0.0).kill(1, 5.0);
        assert!(simulate_with_faults(&b.build(), &p, &ft).is_err());
    }

    #[test]
    fn deterministic_replay() {
        let mut b = TraceBuilder::new();
        let mut prev: Option<u64> = None;
        for i in 0..20 {
            let t = b.task(None, prev, i % 5, 10 + i, i % 2 == 0, 100 * i as usize);
            prev = Some(t);
        }
        let trace = b.build();
        let p = SimParams::paper_cluster(MiddlewareProfile::rmi());
        let a = simulate(&trace, &p);
        let bb = simulate(&trace, &p);
        assert_eq!(a, bb);
    }
}
