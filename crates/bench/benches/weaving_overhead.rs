//! Micro-benchmarks of the weaving runtime's dispatch overhead — the real
//! measurement behind Figure 16's "< 5% penalty" claim (§6, first test).
//!
//! Run with: `cargo bench -p weavepar-bench --bench weaving_overhead`
//!
//! Groups:
//! * `dispatch` — one `filter` call over a realistic pack: direct method
//!   call, unwoven proxy call, proxy with the paper's three-aspect stack;
//! * `join_point` — the fixed per-join-point cost on a no-op method, with
//!   0 / 1 / 3 / 8 pass-through aspects.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use weavepar::prelude::*;
use weavepar_apps::sieve::{candidates, isqrt, PrimeFilter, PrimeFilterProxy};

const MAX: u64 = 1_000_000;
const PACK: usize = 20_000;

fn passthrough(name: &str) -> Aspect {
    Aspect::named(name)
        .around(Pointcut::call("PrimeFilter.*"), |inv: &mut Invocation| inv.proceed())
        .build()
}

fn bench_dispatch(c: &mut Criterion) {
    let sqrt = isqrt(MAX);
    let pack: Vec<u64> = candidates(MAX).into_iter().take(PACK).collect();

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(30);

    group.bench_function("direct_call", |b| {
        let mut filter = PrimeFilter::new(2, sqrt);
        b.iter_batched(|| pack.clone(), |p| black_box(filter.filter(p)), BatchSize::LargeInput);
    });

    group.bench_function("proxy_no_aspects", |b| {
        let weaver = Weaver::new();
        let proxy = PrimeFilterProxy::construct(&weaver, 2, sqrt).unwrap();
        b.iter_batched(
            || pack.clone(),
            |p| black_box(proxy.filter(p).unwrap()),
            BatchSize::LargeInput,
        );
    });

    group.bench_function("proxy_three_aspects", |b| {
        let weaver = Weaver::new();
        for name in ["Partition", "Concurrency", "Distribution"] {
            weaver.plug(passthrough(name));
        }
        let proxy = PrimeFilterProxy::construct(&weaver, 2, sqrt).unwrap();
        b.iter_batched(
            || pack.clone(),
            |p| black_box(proxy.filter(p).unwrap()),
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

fn bench_join_point(c: &mut Criterion) {
    struct Noop;
    weavepar::weaveable! {
        class Noop as NoopProxy {
            fn new() -> Self { Noop }
            fn poke(&mut self, x: u64) -> u64 { x }
        }
    }

    let mut group = c.benchmark_group("join_point");
    for aspects in [0usize, 1, 3, 8] {
        group.bench_function(format!("{aspects}_aspects"), |b| {
            let weaver = Weaver::new();
            for i in 0..aspects {
                weaver.plug(
                    Aspect::named(format!("P{i}"))
                        .around(Pointcut::call("Noop.poke"), |inv: &mut Invocation| inv.proceed())
                        .build(),
                );
            }
            let proxy = NoopProxy::construct(&weaver).unwrap();
            b.iter(|| black_box(proxy.poke(black_box(7)).unwrap()));
        });
    }
    group.bench_function("direct_baseline", |b| {
        let mut noop = Noop::new();
        b.iter(|| black_box(noop.poke(black_box(7))));
    });
    group.finish();
}

fn bench_dispatch_contended(c: &mut Criterion) {
    struct Busy;
    weavepar::weaveable! {
        class Busy as BusyProxy {
            fn new() -> Self { Busy }
            fn poke(&mut self, x: u64) -> u64 { x.wrapping_mul(0x9e37_79b9) }
        }
    }

    // Per-thread operations per timed round: large enough that thread spawn
    // cost is noise next to the dispatch work being measured.
    const OPS: u64 = 4_000;

    let mut group = c.benchmark_group("dispatch_contended");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let weaver = Weaver::new();
            for name in ["Partition", "Concurrency", "Distribution"] {
                weaver.plug(
                    Aspect::named(name)
                        .around(Pointcut::call("Busy.poke"), |inv: &mut Invocation| inv.proceed())
                        .build(),
                );
            }
            let proxies: Vec<BusyProxy> =
                (0..threads).map(|_| BusyProxy::construct(&weaver).unwrap()).collect();
            b.iter(|| {
                std::thread::scope(|s| {
                    for proxy in &proxies {
                        s.spawn(move || {
                            let mut acc = 0u64;
                            for i in 0..OPS {
                                acc = acc.wrapping_add(proxy.poke(black_box(i)).unwrap());
                            }
                            black_box(acc)
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_join_point, bench_dispatch_contended);
criterion_main!(benches);
