//! Micro-benchmarks of the weaving runtime's dispatch overhead — the real
//! measurement behind Figure 16's "< 5% penalty" claim (§6, first test).
//!
//! Run with: `cargo bench -p weavepar-bench --bench weaving_overhead`
//!
//! Groups:
//! * `dispatch` — one `filter` call over a realistic pack: direct method
//!   call, unwoven proxy call, proxy with the paper's three-aspect stack;
//! * `join_point` — the fixed per-join-point cost on a no-op method, with
//!   0 / 1 / 3 / 8 pass-through aspects.
//!
//! Hand-rolled harness (same contract as `autotune_throughput`): writes
//! `BENCH_weave.json` at the workspace root with median ns/call per cell.
//! With `WEAVEPAR_BENCH_QUICK=1` it runs a tiny smoke and skips the JSON
//! (used by ci.sh).

use std::hint::black_box;
use std::time::Instant;

use weavepar::prelude::*;
use weavepar_apps::sieve::{candidates, isqrt, PrimeFilter, PrimeFilterProxy};

const MAX: u64 = 1_000_000;
const PACK: usize = 20_000;

struct Knobs {
    /// Timed rounds per cell (median reported).
    rounds: usize,
    /// filter calls per round.
    filter_iters: usize,
    /// poke calls per round.
    poke_iters: usize,
    quick: bool,
}

impl Knobs {
    fn from_env() -> Self {
        if std::env::var("WEAVEPAR_BENCH_QUICK").is_ok_and(|v| v == "1") {
            Knobs { rounds: 3, filter_iters: 2, poke_iters: 2_000, quick: true }
        } else {
            Knobs { rounds: 15, filter_iters: 10, poke_iters: 200_000, quick: false }
        }
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Median ns/call over `rounds` rounds of `iters` calls each.
fn bench(rounds: usize, iters: usize, mut call: impl FnMut()) -> f64 {
    // One untimed warmup round populates dispatch and advice-chain caches.
    for _ in 0..iters {
        call();
    }
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            call();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(samples)
}

fn passthrough(name: &str, pointcut: &str) -> Aspect {
    let pointcut = Pointcut::call(pointcut);
    Aspect::named(name).around(pointcut, |inv: &mut Invocation| inv.proceed()).build()
}

/// `dispatch`: a realistic `filter` pack through direct / proxy / 3-aspect
/// paths. Pack clones share one allocation, so the setup cost per call is a
/// refcount bump, not a 20k-item copy.
fn bench_dispatch(knobs: &Knobs, cells: &mut Vec<String>) -> (f64, f64) {
    let sqrt = isqrt(MAX);
    let pack: Pack = candidates(MAX).into_iter().take(PACK).collect();

    let mut direct = PrimeFilter::new(2, sqrt);
    let direct_ns = bench(knobs.rounds, knobs.filter_iters, || {
        black_box(direct.filter(black_box(pack.clone())));
    });

    let weaver = Weaver::new();
    let proxy = PrimeFilterProxy::construct(&weaver, 2, sqrt).unwrap();
    let bare_ns = bench(knobs.rounds, knobs.filter_iters, || {
        black_box(proxy.filter(black_box(pack.clone())).unwrap());
    });

    let weaver = Weaver::new();
    for name in ["Partition", "Concurrency", "Distribution"] {
        weaver.plug(passthrough(name, "PrimeFilter.*"));
    }
    let proxy = PrimeFilterProxy::construct(&weaver, 2, sqrt).unwrap();
    let woven_ns = bench(knobs.rounds, knobs.filter_iters, || {
        black_box(proxy.filter(black_box(pack.clone())).unwrap());
    });

    for (config, ns) in [
        ("direct_call", direct_ns),
        ("proxy_no_aspects", bare_ns),
        ("proxy_three_aspects", woven_ns),
    ] {
        println!("{config:>22} {ns:>14.0} ns/call");
        cells.push(format!(
            "    {{\"group\": \"dispatch\", \"config\": \"{config}\", \"median_ns_per_call\": {ns:.1}}}"
        ));
    }
    (direct_ns, woven_ns)
}

/// `join_point`: fixed per-join-point cost on a no-op method.
fn bench_join_point(knobs: &Knobs, cells: &mut Vec<String>) {
    struct Noop;
    weavepar::weaveable! {
        class Noop as NoopProxy {
            fn new() -> Self { Noop }
            fn poke(&mut self, x: u64) -> u64 { x }
        }
    }

    let mut noop = Noop::new();
    let direct_ns = bench(knobs.rounds, knobs.poke_iters, || {
        black_box(noop.poke(black_box(7)));
    });
    println!("{:>22} {direct_ns:>14.1} ns/call", "direct_baseline");
    cells.push(format!(
        "    {{\"group\": \"join_point\", \"config\": \"direct_baseline\", \"median_ns_per_call\": {direct_ns:.1}}}"
    ));

    for aspects in [0usize, 1, 3, 8] {
        let weaver = Weaver::new();
        for i in 0..aspects {
            weaver.plug(passthrough(&format!("P{i}"), "Noop.poke"));
        }
        let proxy = NoopProxy::construct(&weaver).unwrap();
        let ns = bench(knobs.rounds, knobs.poke_iters, || {
            black_box(proxy.poke(black_box(7)).unwrap());
        });
        println!("{:>22} {ns:>14.1} ns/call", format!("{aspects}_aspects"));
        cells.push(format!(
            "    {{\"group\": \"join_point\", \"config\": \"{aspects}_aspects\", \"median_ns_per_call\": {ns:.1}}}"
        ));
    }
}

/// `dispatch_contended`: the three-aspect stack under thread contention —
/// per-thread ns/call as more threads hammer one weaver.
fn bench_contended(knobs: &Knobs, cells: &mut Vec<String>) {
    struct Busy;
    weavepar::weaveable! {
        class Busy as BusyProxy {
            fn new() -> Self { Busy }
            fn poke(&mut self, x: u64) -> u64 { x.wrapping_mul(0x9e37_79b9) }
        }
    }

    let ops = (knobs.poke_iters / 50).max(100) as u64;
    for threads in [1usize, 2, 4, 8] {
        let weaver = Weaver::new();
        for name in ["Partition", "Concurrency", "Distribution"] {
            weaver.plug(passthrough(name, "Busy.poke"));
        }
        let proxies: Vec<BusyProxy> =
            (0..threads).map(|_| BusyProxy::construct(&weaver).unwrap()).collect();
        let ns = bench(knobs.rounds.min(7), 1, || {
            std::thread::scope(|s| {
                for proxy in &proxies {
                    s.spawn(move || {
                        let mut acc = 0u64;
                        for i in 0..ops {
                            acc = acc.wrapping_add(proxy.poke(black_box(i)).unwrap());
                        }
                        black_box(acc)
                    });
                }
            });
        }) / ops as f64;
        println!("{:>22} {ns:>14.1} ns/call/thread", format!("{threads}_threads"));
        cells.push(format!(
            "    {{\"group\": \"dispatch_contended\", \"config\": \"{threads}_threads\", \"median_ns_per_call\": {ns:.1}}}"
        ));
    }
}

fn main() {
    let _ = std::env::args();
    let knobs = Knobs::from_env();

    println!("== dispatch (median of {} rounds × {} calls) ==", knobs.rounds, knobs.filter_iters);
    let mut cells = Vec::new();
    let (direct_ns, woven_ns) = bench_dispatch(&knobs, &mut cells);
    let inflation = woven_ns / direct_ns.max(1e-9);
    println!("{:>22} {inflation:>14.3}x", "woven/direct");

    println!("\n== join_point (median of {} rounds × {} calls) ==", knobs.rounds, knobs.poke_iters);
    bench_join_point(&knobs, &mut cells);

    println!("\n== dispatch_contended (three aspects, shared weaver) ==");
    bench_contended(&knobs, &mut cells);

    if knobs.quick {
        println!("\nquick mode: skipping BENCH_weave.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"weaving_overhead\",\n  \"unit\": \"ns_per_call\",\n  \"rounds\": {},\n  \"woven_over_direct\": {inflation:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        knobs.rounds,
        cells.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_weave.json");
    std::fs::write(out, json).expect("write BENCH_weave.json");
    println!("\nwrote {out}");
}
