//! Observability overhead: what does the metrics layer cost the hot path?
//!
//! Run with: `cargo bench -p weavepar-bench --bench metrics_overhead`
//!
//! Three-way comparison over the paper's three-aspect pass-through stack
//! (scalar `fma` dispatch, the same scenario as `joinpoint_values`):
//!
//! * `off` — no metrics anywhere: the baseline dispatch cost;
//! * `installed_idle` — the metrics aspect is plugged (registry allocated,
//!   counters resolved) but its pointcut matches a *different* method, so
//!   the benched call only pays the pointcut miss;
//! * `recording` — the metrics aspect matches every benched call: one
//!   `Instant::now` pair, a log₂-bucket histogram record and two sharded
//!   counter bumps per call.
//!
//! Acceptance (checked in full mode, recorded in the JSON): installing the
//! layer without pointing it at the hot path costs ≤ 1.05× the `off`
//! baseline — observability is pay-for-what-you-watch. The `recording`
//! ratio is recorded raw (no bound: it pays two clock reads, which dwarf
//! the atomic bumps). A snapshot-determinism check runs in every mode:
//! rendering the same registry twice must produce byte-identical text/JSON.
//! Hand-rolled harness (same contract as the other benches): writes
//! `BENCH_metrics.json` at the workspace root; with `WEAVEPAR_BENCH_QUICK=1`
//! it runs a tiny smoke and skips the JSON and the acceptance assertion
//! (used by ci.sh).

use std::hint::black_box;
use std::time::Instant;

use weavepar::prelude::*;
use weavepar::weaveable;

struct Knobs {
    rounds: usize,
    iters: usize,
    quick: bool,
}

impl Knobs {
    fn from_env() -> Self {
        if std::env::var("WEAVEPAR_BENCH_QUICK").is_ok_and(|v| v == "1") {
            Knobs { rounds: 3, iters: 2_000, quick: true }
        } else {
            Knobs { rounds: 15, iters: 150_000, quick: false }
        }
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Median ns/op over `rounds` rounds of `iters` ops each (one warmup round).
fn bench(rounds: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    for _ in 0..iters {
        op();
    }
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(samples)
}

struct Alu;

weaveable! {
    class Alu as AluProxy {
        fn new() -> Self { Alu }
        fn fma(&mut self, a: u64, b: u64, c: u64, d: u64) -> u64 {
            a.wrapping_mul(b).wrapping_add(c).wrapping_mul(d | 1)
        }
        fn idle(&mut self, x: u64) -> u64 { x }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    InstalledIdle,
    Recording,
}

/// Dispatch ns/call through 3 pass-through aspects under one metrics mode.
/// Returns the registry too so `recording` can be sanity-checked.
fn cell(knobs: &Knobs, mode: Mode) -> (f64, MetricsRegistry) {
    let weaver = Weaver::new();
    let registry = MetricsRegistry::new();
    match mode {
        Mode::Off => {}
        // Installed but watching a method the loop never calls: the benched
        // path pays only the pointcut miss.
        Mode::InstalledIdle => {
            weaver.plug(metrics_aspect("Metrics", Pointcut::call("Alu.idle"), &registry));
        }
        Mode::Recording => {
            weaver.plug(metrics_aspect("Metrics", Pointcut::call("Alu.fma"), &registry));
        }
    }
    for i in 0..3 {
        weaver.plug(
            Aspect::named(format!("P{i}"))
                .around(Pointcut::call("Alu.fma"), |inv: &mut Invocation| inv.proceed())
                .build(),
        );
    }
    let proxy = AluProxy::construct(&weaver).unwrap();
    let ns = bench(knobs.rounds, knobs.iters, || {
        black_box(proxy.fma(black_box(3), black_box(5), black_box(7), black_box(11)).unwrap());
    });
    (ns, registry)
}

fn main() {
    let _ = std::env::args();
    let knobs = Knobs::from_env();

    println!("== metrics_overhead (median of {} rounds × {} calls) ==", knobs.rounds, knobs.iters);
    let (off_ns, _) = cell(&knobs, Mode::Off);
    let (idle_ns, idle_reg) = cell(&knobs, Mode::InstalledIdle);
    let (rec_ns, rec_reg) = cell(&knobs, Mode::Recording);
    let idle_ratio = idle_ns / off_ns.max(1e-9);
    let rec_ratio = rec_ns / off_ns.max(1e-9);
    println!("{:>16} {off_ns:>9.1} ns/call", "off");
    println!("{:>16} {idle_ns:>9.1} ns/call  ({idle_ratio:.3}x off)", "installed_idle");
    println!("{:>16} {rec_ns:>9.1} ns/call  ({rec_ratio:.3}x off)", "recording");

    // The idle registry never saw the benched method; the recording one saw
    // every call (warmup + measured rounds).
    // (The counter exists — it is resolved at aspect build — but stays 0.)
    assert_eq!(
        idle_reg.snapshot().counter("Metrics.calls"),
        Some(0),
        "idle aspect must not record"
    );
    let recorded = rec_reg.snapshot().counter("Metrics.calls").unwrap_or(0);
    assert_eq!(
        recorded as usize,
        knobs.iters * (knobs.rounds + 1),
        "recording aspect metered every call"
    );

    // Snapshot determinism: same registry, byte-identical renders.
    let (s1, s2) = (rec_reg.snapshot(), rec_reg.snapshot());
    assert_eq!(s1.to_text(), s2.to_text(), "snapshot text render must be deterministic");
    assert_eq!(s1.to_json(), s2.to_json(), "snapshot json render must be deterministic");
    println!("snapshot determinism: ok ({} recorded calls)", recorded);

    if knobs.quick {
        println!("\nquick mode: skipping BENCH_metrics.json and acceptance bounds");
        return;
    }
    assert!(
        idle_ratio <= 1.05,
        "installed-idle metrics must cost ≤1.05x the off baseline, got {idle_ratio:.3}x"
    );
    let json = format!(
        "{{\n  \"bench\": \"metrics_overhead\",\n  \"unit\": \"ns_per_call\",\n  \"rounds\": {},\n  \"installed_idle_over_off\": {idle_ratio:.3},\n  \"recording_over_off\": {rec_ratio:.3},\n  \"cells\": [\n    {{\"mode\": \"off\", \"median_ns_per_call\": {off_ns:.1}}},\n    {{\"mode\": \"installed_idle\", \"median_ns_per_call\": {idle_ns:.1}}},\n    {{\"mode\": \"recording\", \"median_ns_per_call\": {rec_ns:.1}}}\n  ]\n}}\n",
        knobs.rounds
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_metrics.json");
    std::fs::write(out, json).expect("write BENCH_metrics.json");
    println!("\nwrote {out}");
}
