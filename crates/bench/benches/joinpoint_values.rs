//! Inline-value fast path vs the boxed ablation (the PR 9 tentpole).
//!
//! Run with: `cargo bench -p weavepar-bench --bench joinpoint_values`
//!
//! Every join point carries its arguments and return as [`Value`]s. The
//! inline representation stores small Copy payloads in the tag word set
//! (no heap); the ablation flips `set_force_boxed` so every `Value::new`
//! takes the pre-inline `Box<dyn Any>` path instead. The measured scenario
//! is a scalar-argument method dispatched through the paper's three-aspect
//! pass-through stack: four `u64` arguments plus the return are 5 values
//! per call, so the ablation pays 5 malloc/free pairs per call that the
//! inline path does not.
//!
//! Groups:
//! * `scalar_dispatch` — 4×u64 → u64 through 0 / 3 pass-through aspects,
//!   inline vs boxed;
//! * `value_roundtrip` — args!/take/ret! round trip with no weaver at all
//!   (the pure representation cost);
//! * `pack_split` — splitting a 64k-item pack into 50 chunks: CoW
//!   `split_chunks` (aliasing one allocation) vs eager per-chunk copies.
//!
//! Acceptance (checked here, recorded in the JSON): the inline
//! representation's argument round trip — build the `args!` pack, take a
//! value out, wrap the return — is ≥ 1.5× the boxed ablation. That is the
//! machinery this PR replaces; end-to-end dispatch also carries the fixed
//! weaving costs (TLS context frames, shard lookup, the per-object monitor,
//! per-advice chain frames) that argument representation cannot touch, so
//! full dispatch is asserted as a regression canary (≥ 1.1× unwoven,
//! ≥ 1.05× through three aspects) and every cell is recorded raw in the
//! JSON. Hand-rolled harness (same contract as the other benches): writes
//! `BENCH_values.json` at the workspace root; with `WEAVEPAR_BENCH_QUICK=1`
//! it runs a tiny smoke and skips the JSON and the acceptance assertions
//! (used by ci.sh).

use std::hint::black_box;
use std::time::Instant;

use weavepar::prelude::*;
use weavepar::weave::value::set_force_boxed;
use weavepar::{args, weaveable};

struct Knobs {
    rounds: usize,
    iters: usize,
    pack_items: usize,
    quick: bool,
}

impl Knobs {
    fn from_env() -> Self {
        if std::env::var("WEAVEPAR_BENCH_QUICK").is_ok_and(|v| v == "1") {
            Knobs { rounds: 3, iters: 2_000, pack_items: 4_096, quick: true }
        } else {
            Knobs { rounds: 15, iters: 150_000, pack_items: 65_536, quick: false }
        }
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Median ns/op over `rounds` rounds of `iters` ops each (one warmup round).
fn bench(rounds: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    for _ in 0..iters {
        op();
    }
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(samples)
}

struct Alu;

weaveable! {
    class Alu as AluProxy {
        fn new() -> Self { Alu }
        fn fma(&mut self, a: u64, b: u64, c: u64, d: u64) -> u64 {
            a.wrapping_mul(b).wrapping_add(c).wrapping_mul(d | 1)
        }
    }
}

fn proxy_with_aspects(aspects: usize) -> AluProxy {
    let weaver = Weaver::new();
    for i in 0..aspects {
        weaver.plug(
            Aspect::named(format!("P{i}"))
                .around(Pointcut::call("Alu.fma"), |inv: &mut Invocation| inv.proceed())
                .build(),
        );
    }
    AluProxy::construct(&weaver).unwrap()
}

/// Scalar dispatch ns/call for a representation × aspect-count cell.
fn scalar_cell(knobs: &Knobs, aspects: usize, boxed: bool) -> f64 {
    let proxy = proxy_with_aspects(aspects);
    set_force_boxed(boxed);
    let ns = bench(knobs.rounds, knobs.iters, || {
        black_box(proxy.fma(black_box(3), black_box(5), black_box(7), black_box(11)).unwrap());
    });
    set_force_boxed(false);
    ns
}

/// Pure representation round trip: build args, take one out, wrap a return.
fn roundtrip_cell(knobs: &Knobs, boxed: bool) -> f64 {
    set_force_boxed(boxed);
    let ns = bench(knobs.rounds, knobs.iters, || {
        let mut a = args![black_box(3u64), black_box(5u64), black_box(7u64), black_box(11u64)];
        let x: u64 = a.take(0).unwrap();
        let ret = AnyValue::new(x.wrapping_mul(13));
        black_box(ret.downcast_ref::<u64>().copied().unwrap());
    });
    set_force_boxed(false);
    ns
}

fn main() {
    let _ = std::env::args();
    let knobs = Knobs::from_env();
    let mut cells = Vec::new();

    println!("== scalar_dispatch (median of {} rounds × {} calls) ==", knobs.rounds, knobs.iters);
    let mut speedup_0 = 0.0;
    let mut speedup_3 = 0.0;
    for aspects in [0usize, 3] {
        let inline_ns = scalar_cell(&knobs, aspects, false);
        let boxed_ns = scalar_cell(&knobs, aspects, true);
        let speedup = boxed_ns / inline_ns.max(1e-9);
        if aspects == 0 {
            speedup_0 = speedup;
        } else {
            speedup_3 = speedup;
        }
        println!(
            "{:>18} inline {inline_ns:>9.1}  boxed {boxed_ns:>9.1}  speedup {speedup:>6.2}x",
            format!("{aspects}_aspects")
        );
        for (repr, ns) in [("inline", inline_ns), ("boxed", boxed_ns)] {
            cells.push(format!(
                "    {{\"group\": \"scalar_dispatch\", \"aspects\": {aspects}, \"repr\": \"{repr}\", \"median_ns_per_call\": {ns:.1}}}"
            ));
        }
    }

    println!("\n== value_roundtrip (no weaver) ==");
    let inline_rt = roundtrip_cell(&knobs, false);
    let boxed_rt = roundtrip_cell(&knobs, true);
    let speedup_rt = boxed_rt / inline_rt.max(1e-9);
    println!(
        "{:>18} inline {inline_rt:>9.1}  boxed {boxed_rt:>9.1}  speedup {speedup_rt:>6.2}x",
        "args_take_ret"
    );
    for (repr, ns) in [("inline", inline_rt), ("boxed", boxed_rt)] {
        cells.push(format!(
            "    {{\"group\": \"value_roundtrip\", \"repr\": \"{repr}\", \"median_ns_per_call\": {ns:.1}}}"
        ));
    }

    println!("\n== pack_split ({} items into 50 chunks) ==", knobs.pack_items);
    let pack: Pack = (0..knobs.pack_items as u64).collect();
    let chunk = knobs.pack_items.div_ceil(50);
    let rounds = knobs.rounds.min(9);
    let iters = (knobs.iters / 1_000).max(10);
    let cow_ns = bench(rounds, iters, || {
        black_box(pack.split_chunks(chunk));
    });
    let copy_ns = bench(rounds, iters, || {
        let copies: Vec<Pack> = pack.as_slice().chunks(chunk).map(Pack::from_slice).collect();
        black_box(copies);
    });
    println!(
        "{:>18} cow {cow_ns:>12.1}  copy {copy_ns:>10.1}  speedup {:>6.2}x",
        "split_50",
        copy_ns / cow_ns.max(1e-9)
    );
    for (mode, ns) in [("cow", cow_ns), ("copy", copy_ns)] {
        cells.push(format!(
            "    {{\"group\": \"pack_split\", \"mode\": \"{mode}\", \"median_ns_per_split\": {ns:.1}}}"
        ));
    }

    if knobs.quick {
        println!("\nquick mode: skipping BENCH_values.json and acceptance bounds");
        return;
    }
    assert!(
        speedup_rt >= 1.5,
        "inline argument round trip must be ≥1.5x the boxed ablation, got {speedup_rt:.2}x"
    );
    assert!(
        speedup_0 >= 1.1,
        "inline unwoven dispatch canary: expected ≥1.1x over boxed, got {speedup_0:.2}x"
    );
    assert!(
        speedup_3 >= 1.05,
        "inline 3-aspect dispatch canary: expected ≥1.05x over boxed, got {speedup_3:.2}x"
    );
    let json = format!(
        "{{\n  \"bench\": \"joinpoint_values\",\n  \"unit\": \"ns_per_call\",\n  \"rounds\": {},\n  \"inline_over_boxed_roundtrip\": {speedup_rt:.3},\n  \"inline_over_boxed_0_aspects\": {speedup_0:.3},\n  \"inline_over_boxed_3_aspects\": {speedup_3:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        knobs.rounds,
        cells.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_values.json");
    std::fs::write(out, json).expect("write BENCH_values.json");
    println!("\nwrote {out}");
}
