//! Remote-call throughput for the middleware fast path (§4.3/§4.4, PR 3).
//!
//! Run with: `cargo bench -p weavepar-bench --bench remote_throughput`
//!
//! Two workloads against an in-process fabric node, at 1/2/4/8 client
//! threads:
//!
//! * `oneway` — each thread fires a burst of oneway `bump` calls at its own
//!   remote object, then synchronises with one replied call (FIFO drain).
//!   The configurations form an ablation ladder, each adding one layer of
//!   the fast path on top of the previous:
//!   * `string_fresh` — per-call string class/method resolution and a fresh
//!     heap buffer per frame (the seed path);
//!   * `interned_fresh` — cached `MethodId`, still fresh buffers (isolates
//!     identifier interning);
//!   * `interned_pooled` — cached id + `BufPool` frames (isolates buffer
//!     pooling); this is `unpacked` in the gain column;
//!   * `packed` — cached id + pooled frames + `call_batch` packs of 64 calls
//!     per `Request::CallPack` (isolates wire packing). The acceptance bar
//!     is packed ≥ 2× the unpacked (`interned_pooled`) path at 8 threads.
//! * `sync` — replied calls, comparing the reply rendezvous backends:
//!   * `channel` — a fresh `bounded(1)` channel per call (the seed path);
//!   * `slot` — the pooled park/unpark reply slab plus pooled frames on both
//!     the argument and reply directions. Replied round trips are dominated
//!     by the client/server context switch, so the spread here is small by
//!     construction (see EXPERIMENTS.md).
//!
//! Hand-rolled harness (same contract as `executor_throughput`): writes a
//! machine-readable `BENCH_remote.json` at the workspace root with the
//! median calls/sec per (workload, config, threads) cell. With
//! `WEAVEPAR_BENCH_QUICK=1` it runs a tiny smoke iteration and skips the
//! JSON (used by ci.sh).
//!
//! The container is single-core: client and server threads share the CPU,
//! so numbers measure per-call path cost, not parallel speedup.

use std::time::Instant;

use weavepar::distribution::{BytesMut, InProcFabric, MarshalRegistry, MethodId, RemoteRef};
use weavepar::{args, weaveable};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PACK: usize = 64;

struct Counter {
    hits: u64,
}

weaveable! {
    class Counter as CounterProxy {
        fn new() -> Self { Counter { hits: 0 } }
        fn bump(&mut self, x: u64) {
            self.hits += x;
        }
        fn total(&mut self) -> u64 {
            self.hits
        }
    }
}

struct Harness {
    fabric: std::sync::Arc<InProcFabric>,
    refs: Vec<RemoteRef>,
    bump: MethodId,
    total: MethodId,
}

impl Harness {
    /// A fresh single-node fabric with one Counter per client thread.
    fn new(threads: usize) -> Self {
        let m = MarshalRegistry::new();
        m.register::<(), ()>("Counter", "new");
        m.register::<(u64,), ()>("Counter", "bump");
        m.register::<(), u64>("Counter", "total");
        let fabric = InProcFabric::new(1, m);
        fabric.register_class::<Counter>();
        let refs = (0..threads)
            .map(|_| {
                let ctor = fabric.marshal().encode_args("Counter", "new", &args![]).unwrap();
                fabric.construct_on(0, "Counter", ctor).unwrap()
            })
            .collect();
        let bump = fabric.marshal().method_id("Counter", "bump").unwrap();
        let total = fabric.marshal().method_id("Counter", "total").unwrap();
        Harness { fabric, refs, bump, total }
    }

    /// Replied `total` on `r` — drains the node's FIFO queue up to here and
    /// returns the server-side hit count.
    fn drain(&self, r: RemoteRef) -> u64 {
        let mut buf = self.fabric.buffers().take();
        self.fabric.marshal().encode_args_id(self.total, &args![], &mut buf).unwrap();
        let reply = self.fabric.call_id(r, self.total, buf.freeze(), true).unwrap().unwrap();
        let ret = self.fabric.marshal().decode_ret_id(self.total, &mut reply.clone()).unwrap();
        self.fabric.buffers().recycle(reply);
        *ret.downcast::<u64>().unwrap()
    }

    /// One timed round of the oneway workload; returns calls/sec.
    fn oneway_round(&self, config: OnewayConfig, calls: usize) -> f64 {
        let start = Instant::now();
        std::thread::scope(|s| {
            for &r in &self.refs {
                s.spawn(move || {
                    let f = &self.fabric;
                    match config {
                        OnewayConfig::StringFresh => {
                            for _ in 0..calls {
                                let args = f
                                    .marshal()
                                    .encode_args("Counter", "bump", &args![1u64])
                                    .unwrap();
                                f.call(r, "bump", args, false).unwrap();
                            }
                        }
                        OnewayConfig::InternedFresh => {
                            for _ in 0..calls {
                                let mut buf = BytesMut::with_capacity(32);
                                f.marshal()
                                    .encode_args_id(self.bump, &args![1u64], &mut buf)
                                    .unwrap();
                                f.call_id(r, self.bump, buf.freeze(), false).unwrap();
                            }
                        }
                        OnewayConfig::InternedPooled => {
                            for _ in 0..calls {
                                let mut buf = f.buffers().take();
                                f.marshal()
                                    .encode_args_id(self.bump, &args![1u64], &mut buf)
                                    .unwrap();
                                f.call_id(r, self.bump, buf.freeze(), false).unwrap();
                            }
                        }
                        OnewayConfig::Packed => {
                            let mut shipped = 0;
                            while shipped < calls {
                                let n = PACK.min(calls - shipped);
                                f.call_batch(
                                    r.node,
                                    (0..n).map(|_| (r.obj, self.bump, args![1u64])),
                                )
                                .unwrap();
                                shipped += n;
                            }
                        }
                    }
                    self.drain(r);
                });
            }
        });
        (self.refs.len() * calls) as f64 / start.elapsed().as_secs_f64()
    }

    /// One timed round of the sync (replied `bump`) workload; returns
    /// calls/sec.
    fn sync_round(&self, config: SyncConfig, calls: usize) -> f64 {
        let start = Instant::now();
        std::thread::scope(|s| {
            for &r in &self.refs {
                s.spawn(move || {
                    let f = &self.fabric;
                    for _ in 0..calls {
                        match config {
                            SyncConfig::Channel => {
                                let mut buf = BytesMut::with_capacity(32);
                                f.marshal()
                                    .encode_args_id(self.bump, &args![1u64], &mut buf)
                                    .unwrap();
                                f.call_id_channel(r, self.bump, buf.freeze(), true).unwrap();
                            }
                            SyncConfig::Slot => {
                                let mut buf = f.buffers().take();
                                f.marshal()
                                    .encode_args_id(self.bump, &args![1u64], &mut buf)
                                    .unwrap();
                                let reply =
                                    f.call_id(r, self.bump, buf.freeze(), true).unwrap().unwrap();
                                f.buffers().recycle(reply);
                            }
                        }
                    }
                });
            }
        });
        (self.refs.len() * calls) as f64 / start.elapsed().as_secs_f64()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum OnewayConfig {
    StringFresh,
    InternedFresh,
    InternedPooled,
    Packed,
}

impl OnewayConfig {
    fn name(self) -> &'static str {
        match self {
            OnewayConfig::StringFresh => "string_fresh",
            OnewayConfig::InternedFresh => "interned_fresh",
            OnewayConfig::InternedPooled => "interned_pooled",
            OnewayConfig::Packed => "packed",
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum SyncConfig {
    Channel,
    Slot,
}

impl SyncConfig {
    fn name(self) -> &'static str {
        match self {
            SyncConfig::Channel => "channel",
            SyncConfig::Slot => "slot",
        }
    }
}

struct Knobs {
    oneway_calls: usize,
    sync_calls: usize,
    warmup: usize,
    rounds: usize,
    quick: bool,
}

impl Knobs {
    fn from_env() -> Self {
        if std::env::var("WEAVEPAR_BENCH_QUICK").is_ok_and(|v| v == "1") {
            Knobs { oneway_calls: 128, sync_calls: 16, warmup: 1, rounds: 2, quick: true }
        } else {
            Knobs { oneway_calls: 4_000, sync_calls: 400, warmup: 2, rounds: 9, quick: false }
        }
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Run one (workload, config, threads) cell on a fresh fabric and verify no
/// call was lost: the server-side hit counts must equal every bump issued.
fn run_cell(knobs: &Knobs, threads: usize, calls: usize, round: impl Fn(&Harness) -> f64) -> f64 {
    let h = Harness::new(threads);
    let mut samples = Vec::with_capacity(knobs.rounds);
    for i in 0..knobs.warmup + knobs.rounds {
        let calls_per_sec = round(&h);
        if i >= knobs.warmup {
            samples.push(calls_per_sec);
        }
    }
    let issued = h.refs.iter().map(|&r| h.drain(r)).sum::<u64>();
    let expected = (threads * (knobs.warmup + knobs.rounds) * calls) as u64;
    assert_eq!(issued, expected, "lost or duplicated remote calls");
    median(samples)
}

fn main() {
    // cargo passes `--bench`; this harness has no options.
    let _ = std::env::args();
    let knobs = Knobs::from_env();

    let mut json_cells = Vec::new();
    let mut cell = |workload: &str, config: &str, threads: usize, calls_per_sec: f64| {
        json_cells.push(format!(
            "    {{\"workload\": \"{workload}\", \"config\": \"{config}\", \"threads\": {threads}, \"median_calls_per_sec\": {calls_per_sec:.0}}}"
        ));
    };

    let oneway_configs = [
        OnewayConfig::StringFresh,
        OnewayConfig::InternedFresh,
        OnewayConfig::InternedPooled,
        OnewayConfig::Packed,
    ];
    println!("== oneway ablation ladder (median calls/sec, {} rounds) ==", knobs.rounds);
    println!(
        "{:>8} {:>13} {:>15} {:>16} {:>13} {:>8}",
        "threads", "string_fresh", "interned_fresh", "interned_pooled", "packed", "pack gain"
    );
    let mut packed_gain_8t = 0.0;
    for threads in THREAD_COUNTS {
        let mut row = Vec::new();
        for config in oneway_configs {
            let calls_per_sec = run_cell(&knobs, threads, knobs.oneway_calls, |h| {
                h.oneway_round(config, knobs.oneway_calls)
            });
            cell("oneway", config.name(), threads, calls_per_sec);
            row.push(calls_per_sec);
        }
        // The packing gain is measured against the otherwise-identical
        // unpacked fast path (interned ids + pooled frames).
        let gain = row[3] / row[2];
        if threads == 8 {
            packed_gain_8t = gain;
        }
        println!(
            "{threads:>8} {:>13.0} {:>15.0} {:>16.0} {:>13.0} {gain:>7.2}x",
            row[0], row[1], row[2], row[3]
        );
    }

    println!("\n== sync reply rendezvous (median calls/sec, {} rounds) ==", knobs.rounds);
    println!("{:>8} {:>14} {:>14} {:>8}", "threads", "channel", "slot", "gain");
    for threads in THREAD_COUNTS {
        let mut row = Vec::new();
        for config in [SyncConfig::Channel, SyncConfig::Slot] {
            let calls_per_sec = run_cell(&knobs, threads, knobs.sync_calls, |h| {
                h.sync_round(config, knobs.sync_calls)
            });
            cell("sync", config.name(), threads, calls_per_sec);
            row.push(calls_per_sec);
        }
        println!("{threads:>8} {:>14.0} {:>14.0} {:>7.2}x", row[0], row[1], row[1] / row[0]);
    }

    println!("\npacked vs unpacked oneway at 8 threads: {packed_gain_8t:.2}x");
    if knobs.quick {
        println!("quick mode: skipping BENCH_remote.json");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"remote_throughput\",\n  \"unit\": \"calls_per_sec\",\n  \"rounds\": {},\n  \"packed_vs_unpacked_oneway_8_threads\": {packed_gain_8t:.2},\n  \"cells\": [\n{}\n  ]\n}}\n",
        knobs.rounds,
        json_cells.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_remote.json");
    std::fs::write(out, json).expect("write BENCH_remote.json");
    println!("wrote {out}");
}
