//! Adaptive grain-size autotuning vs. static pack sizes (PR 8 tentpole).
//!
//! Run with: `cargo bench -p weavepar-bench --bench autotune_throughput`
//!
//! The scenario: a 4-worker farm over a pooled executor, whose split grain
//! (packs per call) is a live tunable. Two workloads:
//!
//! * `uniform`    — every item costs the same; optimal grain is a small
//!   multiple of the worker count (coarse packs amortise per-pack overhead,
//!   but one pack serialises everything);
//! * `heavy_tail` — the first quarter of the items carries ~80% of the
//!   cost; coarse packs trap the heavy region in one pack (load imbalance),
//!   pushing the optimum toward finer grain than `uniform`'s.
//!
//! Item "cost" is a worker-side sleep (sleeps overlap across pool workers,
//! so load balance matters even on a single-core container) plus a CPU-spin
//! per pack call (the per-pack overhead that punishes over-fine grain).
//!
//! Three configurations per workload:
//!
//! * statics — the pack hint pinned at each of {1, 2, 4, 8, 16, 32, 64};
//!   `worst_static` / `best_static` are the measured extremes;
//! * `adaptive` — the pack hint starts at the same default as every run
//!   (packs = 1) and is driven by the seeded hill-climb controller
//!   ([`autotune_aspect_at`] observing the whole farmed call from outside
//!   the partition layer).
//!
//! Acceptance (checked here, recorded in the JSON): adaptive's steady-state
//! median is within 10% of the best static and ≥ 1.3× the worst static on
//! both workloads. Hand-rolled harness (same contract as the other benches):
//! writes `BENCH_autotune.json` at the workspace root; with
//! `WEAVEPAR_BENCH_QUICK=1` it runs a tiny smoke and skips the JSON and the
//! acceptance assertions (used by ci.sh alongside the seeded controller
//! tests).

use std::sync::atomic::AtomicU32;
use std::sync::Arc;
use std::time::{Duration, Instant};

use weavepar::prelude::*;
use weavepar::skeletons::{hints, FarmConfig, Protocol};
use weavepar::tuning::{autotune_aspect_at, Autotuner, Step, Tunable, TuneConfig};
use weavepar::{args, weaveable};

/// Per-pack CPU overhead, microseconds (spin: does not overlap).
const PACK_OVERHEAD_US: u64 = 40;
const WORKERS: usize = 4;
const DEFAULT_PACKS: u32 = 1;
const STATIC_PACKS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

struct Knobs {
    items: usize,
    warmup: usize,
    rounds: usize,
    adapt_calls: usize,
    measure_calls: usize,
    statics: Vec<u32>,
    quick: bool,
}

impl Knobs {
    fn from_env() -> Self {
        if std::env::var("WEAVEPAR_BENCH_QUICK").is_ok_and(|v| v == "1") {
            Knobs {
                items: 64,
                warmup: 1,
                rounds: 3,
                adapt_calls: 12,
                measure_calls: 6,
                statics: vec![1, 8, 64],
                quick: true,
            }
        } else {
            Knobs {
                items: 256,
                warmup: 2,
                rounds: 9,
                adapt_calls: 48,
                measure_calls: 25,
                statics: STATIC_PACKS.to_vec(),
                quick: false,
            }
        }
    }
}

struct Work;

weaveable! {
    class Work as WorkProxy {
        fn new(_seed: u64) -> Self { Work }
        fn crunch(&mut self, items: Vec<u64>) -> u64 {
            // Per-pack overhead: CPU spin (serialises across packs).
            let spin_until = Instant::now() + Duration::from_micros(PACK_OVERHEAD_US);
            while Instant::now() < spin_until {
                std::hint::spin_loop();
            }
            // Pack payload: item values are their cost in µs; one sleep for
            // the pack total (sleeps overlap across pool workers).
            let cost: u64 = items.iter().sum();
            std::thread::sleep(Duration::from_micros(cost));
            items.len() as u64
        }
    }
}

/// Item costs (µs) for one workload.
fn workload_items(workload: &str, n: usize) -> Vec<u64> {
    match workload {
        // 256 × 16µs = 4.1ms of sleep.
        "uniform" => vec![16; n],
        // First quarter heavy: 64 × 100µs + 192 × 8µs ≈ 7.9ms, ~80% of it
        // in the first quarter of the index space.
        _ => (0..n).map(|i| if i < n / 4 { 100 } else { 8 }).collect(),
    }
}

/// The farm protocol with a grain-aware split: the pack count comes from
/// the tuner's published hint, falling back to the captured default.
fn protocol() -> Protocol {
    Protocol {
        class: "Work",
        method: "crunch",
        workers: WORKERS,
        worker_args: Arc::new(|_r, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?])),
        split: Arc::new(|a: &Args| {
            let items = a.get::<Vec<u64>>(0)?;
            let packs = hints::packs_or(DEFAULT_PACKS as usize);
            let chunk = items.len().div_ceil(packs.max(1)).max(1);
            Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
        }),
        reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
        combine: Arc::new(|vs: Vec<AnyValue>| {
            let mut total = 0u64;
            for v in vs {
                total += weavepar::weave::value::downcast_ret::<u64>(v)?;
            }
            Ok(weavepar::ret!(total))
        }),
    }
}

struct Rig {
    weaver: Weaver,
    proxy: WorkProxy,
    cell: Arc<AtomicU32>,
    executor: Executor,
}

/// A fresh farm + pooled-concurrency stack whose pack grain is `cell`.
fn rig() -> Rig {
    let weaver = Weaver::new();
    let cell = Arc::new(AtomicU32::new(DEFAULT_PACKS));
    weaver.plug(FarmConfig::new(protocol()).tuned(cell.clone()).aspect("Partition"));
    let executor = Executor::pool(WORKERS, "autotune-bench");
    // Only the farm's dispatch calls run asynchronously; the outer core
    // call stays synchronous so its wall time is the farmed-call latency.
    for a in future_concurrency_aspect(
        "Concurrency",
        Pointcut::call_sig("Work", "crunch").and(Pointcut::within_core().not()),
        executor.clone(),
    ) {
        weaver.plug(a);
    }
    let proxy = WorkProxy::construct(&weaver, 0).expect("construct farm");
    Rig { weaver, proxy, cell, executor }
}

/// One timed outer call; returns µs.
fn timed_call(rig: &Rig, items: &[u64]) -> f64 {
    let start = Instant::now();
    let n = rig.proxy.crunch(items.to_vec()).expect("crunch");
    assert_eq!(n as usize, items.len(), "farm lost items");
    start.elapsed().as_nanos() as f64 / 1e3
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Median µs/call at a pinned static pack count.
fn run_static(knobs: &Knobs, items: &[u64], packs: u32) -> f64 {
    let rig = rig();
    rig.cell.store(packs, std::sync::atomic::Ordering::Relaxed);
    let mut samples = Vec::with_capacity(knobs.rounds);
    for round in 0..knobs.warmup + knobs.rounds {
        let us = timed_call(&rig, items);
        if round >= knobs.warmup {
            samples.push(us);
        }
    }
    rig.executor.wait_idle();
    median(samples)
}

/// Median µs/call of the adaptive run's steady-state tail, plus the final
/// pack count the controller converged to.
fn run_adaptive(knobs: &Knobs, items: &[u64], seed: u64) -> (f64, u32) {
    let rig = rig();
    let tuner =
        Autotuner::new(TuneConfig { epoch_calls: 2, seed, hysteresis: 0.05, settle: 0, dwell: 2 });
    tuner.register(Tunable::bound(
        "farm.packs",
        rig.cell.clone(),
        DEFAULT_PACKS,
        1,
        64,
        Step::Mul(2),
    ));
    // The observer sits OUTSIDE the partition layer (precedence below
    // PARTITION) so each observation is the whole split/dispatch/combine.
    rig.weaver.plug(autotune_aspect_at(
        "Autotune",
        Pointcut::call_sig("Work", "crunch").and(Pointcut::within_core()),
        tuner.clone(),
        weavepar::weave::aspect::precedence::PARTITION - 10,
    ));
    for _ in 0..knobs.adapt_calls {
        timed_call(&rig, items);
    }
    let mut samples = Vec::with_capacity(knobs.measure_calls);
    for _ in 0..knobs.measure_calls {
        samples.push(timed_call(&rig, items));
    }
    rig.executor.wait_idle();
    (median(samples), rig.cell.load(std::sync::atomic::Ordering::Relaxed))
}

fn main() {
    let _ = std::env::args();
    let knobs = Knobs::from_env();
    let seed = std::env::var("TUNE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42u64);

    let mut json_cells = Vec::new();
    let mut summaries = Vec::new();
    for workload in ["uniform", "heavy_tail"] {
        let items = workload_items(workload, knobs.items);
        println!("\n== {workload} (median µs/farmed call, {} rounds) ==", knobs.rounds);
        let mut best = f64::MAX;
        let mut worst = f64::MIN;
        let mut best_packs = 0;
        let mut worst_packs = 0;
        for &packs in &knobs.statics {
            let us = run_static(&knobs, &items, packs);
            println!("{:>18} {us:>12.0}", format!("static packs={packs}"));
            json_cells.push(format!(
                "    {{\"workload\": \"{workload}\", \"config\": \"static_p{packs}\", \"median_us_per_call\": {us:.1}}}"
            ));
            if us < best {
                best = us;
                best_packs = packs;
            }
            if us > worst {
                worst = us;
                worst_packs = packs;
            }
        }
        let (adaptive, converged) = run_adaptive(&knobs, &items, seed);
        println!("{:>18} {adaptive:>12.0}  (converged packs={converged})", "adaptive");
        json_cells.push(format!(
            "    {{\"workload\": \"{workload}\", \"config\": \"adaptive\", \"median_us_per_call\": {adaptive:.1}, \"seed\": {seed}, \"converged_packs\": {converged}}}"
        ));

        let vs_best = adaptive / best;
        let vs_worst = worst / adaptive;
        println!(
            "    best static packs={best_packs} ({best:.0}µs)  worst static packs={worst_packs} \
             ({worst:.0}µs)  adaptive/best={vs_best:.2}  worst/adaptive={vs_worst:.2}x"
        );
        summaries.push(format!(
            "    {{\"workload\": \"{workload}\", \"best_static_packs\": {best_packs}, \
             \"best_static_us\": {best:.1}, \"worst_static_packs\": {worst_packs}, \
             \"worst_static_us\": {worst:.1}, \"adaptive_us\": {adaptive:.1}, \
             \"adaptive_over_best\": {vs_best:.3}, \"worst_over_adaptive\": {vs_worst:.3}}}"
        ));
        if !knobs.quick {
            assert!(
                vs_best <= 1.10,
                "TUNE_SEED={seed}: {workload}: adaptive ({adaptive:.0}µs) not within 10% of \
                 best static packs={best_packs} ({best:.0}µs)"
            );
            assert!(
                vs_worst >= 1.3,
                "TUNE_SEED={seed}: {workload}: adaptive ({adaptive:.0}µs) not ≥1.3x the worst \
                 static packs={worst_packs} ({worst:.0}µs)"
            );
        }
    }

    if knobs.quick {
        println!("\nquick mode: skipping BENCH_autotune.json and acceptance bounds");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"autotune_throughput\",\n  \"unit\": \"us_per_call\",\n  \"rounds\": {},\n  \"seed\": {seed},\n  \"summary\": [\n{}\n  ],\n  \"cells\": [\n{}\n  ]\n}}\n",
        knobs.rounds,
        summaries.join(",\n"),
        json_cells.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_autotune.json");
    std::fs::write(out, json).expect("write BENCH_autotune.json");
    println!("\nwrote {out}");
}
