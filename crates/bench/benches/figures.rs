//! Regenerates the paper's Figure 16, Figure 17 and Table 1.
//!
//! Run with: `cargo bench -p weavepar-bench --bench figures`
//! (scale the workload with `WEAVEPAR_MAX`, default 2,000,000).
//!
//! Output goes to stdout and to `target/weavepar-figures.txt`, in the exact
//! row/series layout of the paper's plots.

use std::io::Write;

use weavepar_bench::{
    default_max, degradation, figure16, figure17, measure_sequential, measure_weaving_inflation,
    render_ascii_chart, render_points, table1, FigurePoint, PAPER_SEQUENTIAL_SECONDS,
};

fn shape_checks(fig16: &[FigurePoint], fig17: &[FigurePoint]) -> Vec<String> {
    let mut notes = Vec::new();
    let at = |points: &[FigurePoint], series: &str, filters: usize| {
        points
            .iter()
            .find(|p| p.series == series && p.filters == filters)
            .map(|p| p.seconds)
            .unwrap_or(f64::NAN)
    };

    // Figure 16: AspectJ within 5% of Java everywhere.
    let worst = weavepar_bench::FILTER_COUNTS
        .iter()
        .map(|&f| at(fig16, "AspectJ", f) / at(fig16, "Java", f))
        .fold(0.0f64, f64::max);
    notes.push(format!(
        "fig16: max AspectJ/Java ratio = {:.3} (paper: < 1.05) {}",
        worst,
        if worst < 1.05 { "— holds" } else { "— VIOLATED" }
    ));

    // Figure 17: farm beats pipeline at every filter count. Each point
    // comes from an independently captured (measured) trace, so allow 5%
    // measurement noise on the comparisons.
    let farm_wins = weavepar_bench::FILTER_COUNTS
        .iter()
        .all(|&f| at(fig17, "FarmRMI", f) <= at(fig17, "PipeRMI", f) * 1.05);
    notes.push(format!(
        "fig17: FarmRMI <= PipeRMI at every point (±5%) {}",
        if farm_wins { "— holds" } else { "— VIOLATED" }
    ));

    // Figure 17: MPP at or below RMI.
    let mpp_wins = weavepar_bench::FILTER_COUNTS
        .iter()
        .all(|&f| at(fig17, "FarmMPP", f) <= at(fig17, "FarmRMI", f) * 1.05);
    notes.push(format!(
        "fig17: FarmMPP <= FarmRMI at every point (±5%) {}",
        if mpp_wins { "— holds" } else { "— VIOLATED" }
    ));

    // Figure 17: FarmThreads plateaus at the single node's core count —
    // "this version cannot take advantage of more than 4 filters". The
    // plateau is the 4-core work bound; distributed farms break through it.
    let t1 = at(fig17, "FarmThreads", 1);
    let t4 = at(fig17, "FarmThreads", 4);
    let t16 = at(fig17, "FarmThreads", 16);
    let plateaued = (t1 / t4 > 2.0) && (t4 / t16 < 1.3);
    notes.push(format!(
        "fig17: FarmThreads plateaus at one node's cores ({t1:.2}s @1, {t4:.2}s @4, {t16:.2}s @16) {}",
        if plateaued { "— holds" } else { "— VIOLATED" }
    ));

    // Figure 17: distributed farms keep improving where FarmThreads cannot.
    let breaks_through =
        at(fig17, "FarmMPP", 16) < t16 * 0.8 && at(fig17, "FarmMPP", 16) < at(fig17, "FarmMPP", 4);
    notes.push(format!(
        "fig17: distributed farm beats the shared-memory plateau at 16 filters {}",
        if breaks_through { "— holds" } else { "— VIOLATED" }
    ));

    notes
}

fn main() {
    // (criterion-style CLI arguments such as --bench are deliberately ignored)
    let max = default_max();
    let packs = 50;
    let mut out = String::new();

    let (primes, seq) = measure_sequential(max);
    let inflation = measure_weaving_inflation(max, 3);
    out.push_str(&format!(
        "workload: primes <= {max} ({} primes), {packs} packs\n\
         local sequential time: {seq:?}  (calibrated to the paper's {PAPER_SEQUENTIAL_SECONDS:.1}s Xeon run)\n\
         measured weaving inflation: {:.4}x\n\n",
        primes.len(),
        inflation,
    ));

    let fig16 = figure16(max, packs).expect("figure 16 failed");
    out.push_str(&render_points(
        "Figure 16 — Java (hand-coded RMI) vs AspectJ (woven), pipeline, simulated seconds",
        &fig16,
    ));
    out.push('\n');

    let fig17 = figure17(max, packs).expect("figure 17 failed");
    out.push_str(&render_points("Figure 17 — module combinations, simulated seconds", &fig17));
    out.push('\n');
    out.push_str(&render_ascii_chart("Figure 17 (chart)", &fig17, 14));
    out.push('\n');

    out.push_str("Table 1 — tested module combinations (validated in-process)\n");
    out.push_str(&format!(
        "{:<13}{:<14}{:<12}{:<13}{:<9}{}\n",
        "label", "partition", "concurrency", "distribution", "correct", "wall (local)"
    ));
    for row in table1(200_000).expect("table 1 failed") {
        out.push_str(&format!(
            "{:<13}{:<14}{:<12}{:<13}{:<9}{:?}\n",
            row.label,
            row.partition,
            row.concurrency,
            row.distribution,
            if row.correct { "yes" } else { "NO" },
            row.wall,
        ));
    }
    out.push('\n');

    out.push_str("Degradation — FarmRMI (4 filters), worker nodes killed 30% into the run\n");
    out.push_str(&format!(
        "{:<8}{:<12}{:<14}{:<14}{}\n",
        "killed", "makespan", "throughput", "redispatched", "messages"
    ));
    for row in degradation(max, packs, 4, 2).expect("degradation failed") {
        out.push_str(&format!(
            "{:<8}{:<12}{:<14}{:<14}{}\n",
            row.killed,
            format!("{:.2}s", row.makespan),
            format!("{:.2}x", row.relative_throughput),
            row.redispatched,
            row.messages,
        ));
    }
    out.push('\n');

    out.push_str("Shape checks against the paper's findings:\n");
    for note in shape_checks(&fig16, &fig17) {
        out.push_str(&format!("  {note}\n"));
    }

    println!("{out}");
    let path = std::path::Path::new("target").join("weavepar-figures.txt");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut file) = std::fs::File::create(&path) {
        let _ = file.write_all(out.as_bytes());
        eprintln!("written: {}", path.display());
    }
}
