//! Throughput benchmark for the work-stealing executor (§4.4 thread-pool
//! optimisation, PR 2).
//!
//! Run with: `cargo bench -p weavepar-bench --bench executor_throughput`
//!
//! Two workloads, each at 1/2/4/8 workers:
//!
//! * `fanout`  — a flat burst of empty tasks submitted from the caller
//!   thread; measures pure submission + dispatch overhead per task.
//! * `nested`  — a fork/join tree: seeded roots each spawn children from
//!   inside the pool; measures the worker-local spawn path (LIFO slot) and
//!   stealing.
//!
//! Three scheduler configurations form the ablation:
//!
//! * `single_spawn` — the pre-PR single-channel pool, one `spawn` per task
//!   (the PR 1 baseline);
//! * `steal_spawn`  — work-stealing deques, still one `spawn` per task
//!   (isolates the queue structure);
//! * `steal_batch`  — work-stealing plus `spawn_batch` pack submission
//!   (isolates batch submission; this is what the skeletons use).
//!
//! This is a hand-rolled harness rather than the criterion shim because the
//! contract (satellite 5) is a machine-readable `BENCH_executor.json` at the
//! workspace root with the median ns/task per (workload, scheduler, workers)
//! cell. CLI arguments (cargo passes `--bench`) are ignored.
//!
//! The container is single-core: numbers measure per-task scheduling
//! overhead on the serialized path, not parallel speedup (see
//! EXPERIMENTS.md).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use weavepar::concurrency::{Scheduler, ThreadPool};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FANOUT_TASKS: usize = 1_000;
const NESTED_ROOTS: usize = 100;
const NESTED_CHILDREN: usize = 9; // total tasks = roots * (1 + children)
const WARMUP_ROUNDS: usize = 3;
const ROUNDS: usize = 15;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    SingleSpawn,
    StealSpawn,
    StealBatch,
}

impl Config {
    fn name(self) -> &'static str {
        match self {
            Config::SingleSpawn => "single_spawn",
            Config::StealSpawn => "steal_spawn",
            Config::StealBatch => "steal_batch",
        }
    }

    fn scheduler(self) -> Scheduler {
        match self {
            Config::SingleSpawn => Scheduler::SingleQueue,
            Config::StealSpawn | Config::StealBatch => Scheduler::WorkStealing,
        }
    }
}

/// One timed round of the flat fan-out workload; returns ns/task.
fn fanout_round(pool: &Arc<ThreadPool>, config: Config, hits: &Arc<AtomicUsize>) -> f64 {
    let start = Instant::now();
    match config {
        Config::StealBatch => {
            pool.spawn_batch((0..FANOUT_TASKS).map(|_| {
                let hits = hits.clone();
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        _ => {
            for _ in 0..FANOUT_TASKS {
                let hits = hits.clone();
                pool.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
    }
    pool.wait_idle();
    start.elapsed().as_nanos() as f64 / FANOUT_TASKS as f64
}

/// One timed round of the nested fork/join workload; returns ns/task.
fn nested_round(pool: &Arc<ThreadPool>, config: Config, hits: &Arc<AtomicUsize>) -> f64 {
    let root = |pool: Arc<ThreadPool>, hits: Arc<AtomicUsize>| {
        move || {
            hits.fetch_add(1, Ordering::Relaxed);
            for _ in 0..NESTED_CHILDREN {
                let hits = hits.clone();
                pool.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
    };
    let start = Instant::now();
    match config {
        Config::StealBatch => {
            pool.spawn_batch((0..NESTED_ROOTS).map(|_| root(pool.clone(), hits.clone())));
        }
        _ => {
            for _ in 0..NESTED_ROOTS {
                pool.spawn(root(pool.clone(), hits.clone()));
            }
        }
    }
    pool.wait_idle();
    let total = NESTED_ROOTS * (1 + NESTED_CHILDREN);
    start.elapsed().as_nanos() as f64 / total as f64
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn run_cell(workload: &str, config: Config, workers: usize) -> f64 {
    let pool = ThreadPool::with_scheduler(workers, "bench", config.scheduler());
    let hits = Arc::new(AtomicUsize::new(0));
    let mut samples = Vec::with_capacity(ROUNDS);
    let mut expected = 0;
    for round in 0..WARMUP_ROUNDS + ROUNDS {
        let ns = match workload {
            "fanout" => {
                expected += FANOUT_TASKS;
                fanout_round(&pool, config, &hits)
            }
            _ => {
                expected += NESTED_ROOTS * (1 + NESTED_CHILDREN);
                nested_round(&pool, config, &hits)
            }
        };
        if round >= WARMUP_ROUNDS {
            samples.push(ns);
        }
    }
    assert_eq!(hits.load(Ordering::Relaxed), expected, "lost tasks in {workload}");
    median(samples)
}

fn main() {
    // cargo passes `--bench`; this harness has no options.
    let _ = std::env::args();

    let configs = [Config::SingleSpawn, Config::StealSpawn, Config::StealBatch];
    let workloads = ["fanout", "nested"];

    let mut json_cells = Vec::new();
    for workload in workloads {
        println!("\n== {workload} (median ns/task, {ROUNDS} rounds) ==");
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>8}",
            "workers", "single_spawn", "steal_spawn", "steal_batch", "gain"
        );
        for workers in WORKER_COUNTS {
            let mut row = Vec::new();
            for config in configs {
                let ns = run_cell(workload, config, workers);
                json_cells.push(format!(
                    "    {{\"workload\": \"{workload}\", \"scheduler\": \"{}\", \"workers\": {workers}, \"median_ns_per_task\": {ns:.1}}}",
                    config.name()
                ));
                row.push(ns);
            }
            let gain = row[0] / row[2];
            println!(
                "{:>8} {:>14.0} {:>14.0} {:>14.0} {:>7.2}x",
                workers, row[0], row[1], row[2], gain
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"executor_throughput\",\n  \"unit\": \"ns_per_task\",\n  \"rounds\": {ROUNDS},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_executor.json");
    std::fs::write(out, json).expect("write BENCH_executor.json");
    println!("\nwrote {out}");
}
