//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! Run with: `cargo bench -p weavepar-bench --bench ablations`
//!
//! * `match_cache` — advice-match caching on vs off (the per-join-point
//!   matching cost the cache removes);
//! * `match_cache_sharding` — the generation-stamped snapshot cache under
//!   concurrent dispatch over many signatures, vs re-matching every call;
//! * `executor` — thread-per-call vs pooled execution of a farmed workload
//!   (the §4.4 thread-pool optimisation);
//! * `object_cache` — the §4.4 cache-objects aspect on a repeat-heavy
//!   workload, plugged vs unplugged;
//! * `monitor` — per-object monitor acquisition cost (synchronisation aspect
//!   plugged vs not).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use weavepar::concurrency::resolve_any;
use weavepar::optimisation::{object_cache_aspect, CachePolicy};
use weavepar::prelude::*;
use weavepar_apps::sieve::{candidates, isqrt, PrimeFilterProxy};

const MAX: u64 = 200_000;

fn weaver_with_aspects(n: usize) -> Weaver {
    let weaver = Weaver::new();
    for i in 0..n {
        weaver.plug(
            Aspect::named(format!("P{i}"))
                .around(Pointcut::call("PrimeFilter.*"), |inv: &mut Invocation| inv.proceed())
                .build(),
        );
    }
    weaver
}

fn bench_match_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_cache");
    for (name, enabled) in [("cached", true), ("uncached", false)] {
        group.bench_function(name, |b| {
            let weaver = weaver_with_aspects(6);
            weaver.set_match_cache(enabled);
            let proxy = PrimeFilterProxy::construct(&weaver, 2, 10).unwrap();
            b.iter(|| black_box(proxy.filter(black_box(Pack::from_slice(&[11, 13]))).unwrap()));
        });
    }
    group.finish();
}

fn bench_match_cache_sharding(c: &mut Criterion) {
    // The generation-stamped snapshot cache (thread-local chains backed by a
    // sharded per-snapshot map) vs no caching at all, under concurrent
    // dispatch over several distinct join-point signatures — the workload the
    // sharding exists for. `no_cache` re-runs pointcut matching on every call.
    struct Hot;
    weavepar::weaveable! {
        class Hot as HotProxy {
            fn new() -> Self { Hot }
            fn m0(&mut self, x: u64) -> u64 { x }
            fn m1(&mut self, x: u64) -> u64 { x }
            fn m2(&mut self, x: u64) -> u64 { x }
            fn m3(&mut self, x: u64) -> u64 { x }
            fn m4(&mut self, x: u64) -> u64 { x }
            fn m5(&mut self, x: u64) -> u64 { x }
            fn m6(&mut self, x: u64) -> u64 { x }
            fn m7(&mut self, x: u64) -> u64 { x }
        }
    }
    const METHODS: [&str; 8] = ["m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"];
    const OPS: u64 = 2_000;

    let mut group = c.benchmark_group("match_cache_sharding");
    group.sample_size(15);
    for (name, cached) in [("sharded_cache", true), ("no_cache", false)] {
        for threads in [1usize, 4] {
            group.bench_function(format!("{name}_{threads}t"), |b| {
                let weaver = Weaver::new();
                for aspect in ["Partition", "Concurrency", "Distribution"] {
                    weaver.plug(
                        Aspect::named(aspect)
                            .around(Pointcut::call("Hot.*"), |inv: &mut Invocation| inv.proceed())
                            .build(),
                    );
                }
                weaver.set_match_cache(cached);
                let proxies: Vec<HotProxy> =
                    (0..threads).map(|_| HotProxy::construct(&weaver).unwrap()).collect();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for proxy in &proxies {
                            s.spawn(move || {
                                for i in 0..OPS {
                                    let method = METHODS[(i & 7) as usize];
                                    let ret =
                                        proxy.handle().call(method, weavepar::args![i]).unwrap();
                                    black_box(ret);
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    use weavepar::concurrency::future_concurrency_aspect;
    use weavepar_apps::sieve::PrimeFilter;

    let sqrt = isqrt(MAX);
    let packs: Vec<Pack> = Pack::from_vec(candidates(MAX)).split_chunks(8_000);

    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    for (name, pooled) in [("thread_per_call", false), ("pool_4", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let weaver = Weaver::new();
                weaver.register_class::<PrimeFilter>();
                let executor =
                    if pooled { Executor::pool(4, "bench") } else { Executor::thread_per_call() };
                for a in future_concurrency_aspect(
                    "Concurrency",
                    Pointcut::call("PrimeFilter.filter"),
                    executor.clone(),
                ) {
                    weaver.plug(a);
                }
                let proxies: Vec<_> = (0..4)
                    .map(|_| PrimeFilterProxy::construct(&weaver, 2, sqrt).unwrap())
                    .collect();
                let pending: Vec<_> = packs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        proxies[i % proxies.len()]
                            .handle()
                            .call("filter", weavepar::args![p.clone()])
                            .unwrap()
                    })
                    .collect();
                let mut survivors = 0usize;
                for ret in pending {
                    let v = resolve_any(ret).unwrap().downcast::<Pack>().unwrap();
                    survivors += v.len();
                }
                executor.wait_idle();
                black_box(survivors)
            });
        });
    }
    group.finish();
}

fn bench_object_cache(c: &mut Criterion) {
    let sqrt = isqrt(MAX);
    let pack: Pack = candidates(MAX).into_iter().take(10_000).collect();

    let mut group = c.benchmark_group("object_cache");
    group.sample_size(20);
    for (name, cached) in [("uncached", false), ("cached", true)] {
        group.bench_function(name, |b| {
            let weaver = Weaver::new();
            if cached {
                let (aspect, _stats) = object_cache_aspect(
                    "Cache",
                    Pointcut::call("PrimeFilter.filter"),
                    CachePolicy::unary::<Pack, Pack>(),
                );
                weaver.plug(aspect);
            }
            let proxy = PrimeFilterProxy::construct(&weaver, 2, sqrt).unwrap();
            // Repeat-heavy workload: the same pack filtered over and over.
            b.iter(|| black_box(proxy.filter(pack.clone()).unwrap()));
        });
    }
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    use weavepar::concurrency::synchronized_aspect;

    let mut group = c.benchmark_group("monitor");
    for (name, synchronised) in [("unsynchronised", false), ("synchronised", true)] {
        group.bench_function(name, |b| {
            let weaver = Weaver::new();
            if synchronised {
                weaver.plug(synchronized_aspect("Sync", Pointcut::call("PrimeFilter.filter")));
            }
            let proxy = PrimeFilterProxy::construct(&weaver, 2, 100).unwrap();
            b.iter(|| {
                black_box(proxy.filter(black_box(Pack::from_slice(&[101, 103, 105]))).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    use weavepar::distribution::MarshalRegistry;

    let registry = MarshalRegistry::new();
    registry.register::<(Vec<u64>,), Vec<u64>>("PrimeFilter", "filter");
    let pack: Vec<u64> = (0..100_000u64).collect();
    let args = weavepar::args![pack];

    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_100k_pack", |b| {
        b.iter(|| black_box(registry.encode_args("PrimeFilter", "filter", &args).unwrap()));
    });
    let bytes = registry.encode_args("PrimeFilter", "filter", &args).unwrap();
    group.bench_function("decode_100k_pack", |b| {
        b.iter(|| black_box(registry.decode_args("PrimeFilter", "filter", &bytes).unwrap()));
    });
    group.finish();
    let _ = Arc::strong_count(&Arc::new(()));
}

criterion_group!(
    benches,
    bench_match_cache,
    bench_match_cache_sharding,
    bench_executor,
    bench_object_cache,
    bench_monitor,
    bench_wire_roundtrip
);
criterion_main!(benches);
