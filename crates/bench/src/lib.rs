//! # weavepar-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's §6 evaluation:
//!
//! * **Figure 16** — hand-coded "Java" RMI pipeline vs the woven "AspectJ"
//!   version, execution time over 1..16 filters;
//! * **Figure 17** — PipeRMI / FarmThreads / FarmRMI / FarmDRMI / FarmMPP
//!   over 1..16 filters;
//! * **Table 1** — the module combinations, re-validated for correctness.
//!
//! ## Method
//!
//! The paper ran on 7 dual-Xeon nodes we do not have. The harness therefore:
//!
//! 1. **runs the real woven application in-process** with a trace recorder,
//!    capturing the genuine task DAG (pack counts, forwarding chains,
//!    asynchrony, message sizes, measured CPU costs);
//! 2. **measures** the weaving dispatch overhead (woven vs direct calls on
//!    this machine) — the quantity Figure 16 isolates;
//! 3. **replays** the trace on `weavepar-cluster`'s model of the paper's
//!    testbed, with CPU speed calibrated so the one-filter sequential run
//!    matches the paper's ≈6.3 s.
//!
//! Absolute seconds are therefore calibrated, but every *shape* — who wins,
//! scaling limits, middleware orderings — emerges from the replayed
//! structure of real executions.

use std::time::{Duration, Instant};

use weavepar::cluster::{
    simulate, simulate_with_faults, FaultTimeline, MiddlewareProfile, SimParams, SimReport,
};
use weavepar::prelude::*;
use weavepar::weave::trace::{Recorder, TraceGraph};
use weavepar_apps::sieve::{
    build_sieve, candidates, isqrt, run_sieve, sequential_sieve, PrimeFilter, PrimeFilterProxy,
    SieveConfig,
};

/// The paper's sequential execution time at one filter (read off Figure 16),
/// used to calibrate simulated CPU speed.
pub const PAPER_SEQUENTIAL_SECONDS: f64 = 6.3;

/// The paper's workload: primes up to 10 million in 50 packs. The harness
/// scales `max` down (default 2 million) to keep regeneration quick; pack
/// count stays at 50 so the communication structure is identical.
pub fn default_max() -> u64 {
    std::env::var("WEAVEPAR_MAX").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000_000)
}

/// The figures' x-axis.
pub const FILTER_COUNTS: [usize; 6] = [1, 4, 7, 10, 13, 16];

/// One point of a figure: a variant at a filter count.
#[derive(Debug, Clone)]
pub struct FigurePoint {
    /// Series label (e.g. `FarmRMI`).
    pub series: String,
    /// Number of filters.
    pub filters: usize,
    /// Simulated execution time on the paper cluster, seconds.
    pub seconds: f64,
    /// Cross-node messages in the replay.
    pub messages: usize,
}

/// Measure the wall-clock of one closure.
fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Run the sequential sieve and return (primes, wall time).
pub fn measure_sequential(max: u64) -> (Vec<u64>, Duration) {
    time(|| sequential_sieve(max))
}

/// CPU-speed factor that maps this machine's measured costs onto the paper's
/// Xeon: `local seconds / paper seconds`.
pub fn calibrate_cpu_speed(local_sequential: Duration) -> f64 {
    (local_sequential.as_secs_f64() / PAPER_SEQUENTIAL_SECONDS).max(1e-9)
}

/// Run a sieve configuration in-process (threads only — distribution costs
/// are applied during replay) and capture its trace.
///
/// Per-task costs are wall-clock measurements taken under real thread
/// oversubscription (50 packs race on this machine's few cores), which
/// inflates them nonuniformly. [`normalize_costs`] rescales the filter tasks
/// so their total equals a contention-free sequential measurement of the same
/// workload; the *relative* per-task pattern (heavy early pipeline stages,
/// uniform farm packs) is preserved from the measurement.
pub fn capture_trace(config: SieveConfig, max: u64) -> WeaveResult<TraceGraph> {
    let local = SieveConfig { middleware: weavepar_apps::sieve::Middleware::None, ..config };
    let run = build_sieve(local);
    let recorder = Recorder::measuring();
    run.stack.weaver().set_recorder(Some(recorder.clone()));
    let primes = run_sieve(&run, max)?;
    run.stack.weaver().set_recorder(None);
    debug_assert_eq!(primes.len(), sequential_sieve(max).len());
    Ok(recorder.finish())
}

/// Rescale the costs of tasks with the given method name so they sum to
/// `target_total` (see [`capture_trace`]).
pub fn normalize_costs(trace: &mut TraceGraph, method: &str, target_total: Duration) {
    let measured: f64 = trace
        .tasks
        .iter()
        .filter(|t| t.signature.method == method)
        .map(|t| t.cost.as_secs_f64())
        .sum();
    if measured <= 0.0 {
        return;
    }
    let scale = target_total.as_secs_f64() / measured;
    for task in &mut trace.tasks {
        if task.signature.method == method {
            task.cost = Duration::from_secs_f64(task.cost.as_secs_f64() * scale);
        }
    }
}

/// Contention-free measurement of the pure filtering work for `max`
/// (the normalisation target for captured traces).
pub fn measure_filter_work(max: u64) -> Duration {
    let mut filter = PrimeFilter::new(2, isqrt(max));
    let cands = Pack::from_vec(candidates(max));
    let (_, elapsed) = time(|| filter.filter(cands));
    elapsed
}

/// Capture a trace and normalise its filter costs (the harness default).
pub fn capture_normalized(
    config: SieveConfig,
    max: u64,
    filter_work: Duration,
) -> WeaveResult<TraceGraph> {
    let mut trace = capture_trace(config, max)?;
    normalize_costs(&mut trace, "filter", filter_work);
    Ok(trace)
}

/// Capture a trace with fully *modelled* (deterministic) costs: `filter`
/// costs 1 µs per candidate, constructions cost 1 ms. Structure comes from
/// the real woven execution; costs are load-independent — what the
/// regression tests compare shapes with.
pub fn capture_modelled(config: SieveConfig, max: u64) -> WeaveResult<TraceGraph> {
    use weavepar::weave::trace::CostModel;
    let model: CostModel = std::sync::Arc::new(|sig: &Signature, args: &Args| {
        if sig.is_construction() {
            return Some(Duration::from_millis(1));
        }
        if sig.method == "filter" {
            let n = args.get::<Pack>(0).map(|p| p.len()).unwrap_or(0);
            return Some(Duration::from_micros(n as u64));
        }
        None
    });
    let local = SieveConfig { middleware: weavepar_apps::sieve::Middleware::None, ..config };
    let run = build_sieve(local);
    let recorder = Recorder::with_cost_model(model);
    run.stack.weaver().set_recorder(Some(recorder.clone()));
    run_sieve(&run, max)?;
    run.stack.weaver().set_recorder(None);
    Ok(recorder.finish())
}

/// Measure the weaving dispatch inflation: the ratio of woven to direct
/// execution time for realistic `filter` packs (Figure 16's "AspectJ minus
/// Java"). Median of `runs` measurements.
pub fn measure_weaving_inflation(max: u64, runs: usize) -> f64 {
    let sqrt = isqrt(max);
    // Pack clones share one allocation, so cloning per run is free.
    let pack: Pack = candidates(max).into_iter().take(100_000).collect();
    let mut ratios = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        // Direct sequential call.
        let mut direct = PrimeFilter::new(2, sqrt);
        let (direct_out, direct_time) = time(|| direct.filter(pack.clone()));

        // Woven call through a weaver with a pass-through aspect stack the
        // size of the paper's (partition+concurrency+distribution = 3).
        let weaver = Weaver::new();
        for name in ["A", "B", "C"] {
            weaver.plug(
                Aspect::named(name)
                    .around(Pointcut::call("PrimeFilter.filter"), |inv: &mut Invocation| {
                        inv.proceed()
                    })
                    .build(),
            );
        }
        let proxy = PrimeFilterProxy::construct(&weaver, 2, sqrt).expect("construct");
        let (woven_out, woven_time) = time(|| proxy.filter(pack.clone()).expect("woven call"));
        assert_eq!(direct_out, woven_out);
        ratios.push(woven_time.as_secs_f64() / direct_time.as_secs_f64().max(1e-12));
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Simulation parameters for a variant label.
pub fn params_for(label: &str, cpu_speed: f64, cpu_inflation: f64) -> SimParams {
    let mut params = match label {
        "FarmThreads" => SimParams::threads_on_single_node(),
        "FarmMPP" => SimParams::paper_cluster(MiddlewareProfile::mpp()),
        _ => SimParams::paper_cluster(MiddlewareProfile::rmi()),
    };
    params.cluster.cpu_speed = cpu_speed;
    params.cpu_inflation = cpu_inflation;
    params
}

/// Replay a captured trace under a variant's parameters.
pub fn replay(trace: &TraceGraph, label: &str, cpu_speed: f64, cpu_inflation: f64) -> SimReport {
    simulate(trace, &params_for(label, cpu_speed, cpu_inflation))
}

/// Figure 16: hand-coded RMI pipeline ("Java") vs the woven one ("AspectJ").
/// Both replay the same pipeline traces; the AspectJ series carries the
/// measured dispatch inflation, the Java series runs at 1.0.
pub fn figure16(max: u64, packs: usize) -> WeaveResult<Vec<FigurePoint>> {
    let (_, seq) = measure_sequential(max);
    let cpu_speed = calibrate_cpu_speed(seq);
    let inflation = measure_weaving_inflation(max, 5);
    let filter_work = measure_filter_work(max);
    let mut points = Vec::new();
    for filters in FILTER_COUNTS {
        let trace = capture_normalized(
            SieveConfig { packs, ..SieveConfig::pipe_rmi(filters) },
            max,
            filter_work,
        )?;
        for (series, infl) in [("Java", 1.0), ("AspectJ", inflation)] {
            let report = replay(&trace, "PipeRMI", cpu_speed, infl);
            points.push(FigurePoint {
                series: series.to_string(),
                filters,
                seconds: report.makespan,
                messages: report.messages,
            });
        }
    }
    Ok(points)
}

/// Figure 17: the five module combinations over the filter counts.
///
/// The middleware-less captures of `FarmThreads`, `FarmRMI` and `FarmMPP`
/// are structurally identical (same partition + concurrency modules), so one
/// farm trace per filter count serves all three series — replayed under
/// single-node/local, cluster/RMI and cluster/MPP parameters respectively.
/// This makes the within-figure middleware comparison exact rather than
/// subject to capture-to-capture measurement noise.
pub fn figure17(max: u64, packs: usize) -> WeaveResult<Vec<FigurePoint>> {
    let (_, seq) = measure_sequential(max);
    let cpu_speed = calibrate_cpu_speed(seq);
    let inflation = measure_weaving_inflation(max, 5);
    let filter_work = measure_filter_work(max);
    let mut points = Vec::new();
    let mut push = |label: &str, filters: usize, trace: &TraceGraph| {
        let report = replay(trace, label, cpu_speed, inflation);
        points.push(FigurePoint {
            series: label.to_string(),
            filters,
            seconds: report.makespan,
            messages: report.messages,
        });
    };
    for filters in FILTER_COUNTS {
        let farm = capture_normalized(
            SieveConfig { packs, ..SieveConfig::farm_rmi(filters) },
            max,
            filter_work,
        )?;
        push("FarmThreads", filters, &farm);
        push("FarmRMI", filters, &farm);
        push("FarmMPP", filters, &farm);

        let pipe = capture_normalized(
            SieveConfig { packs, ..SieveConfig::pipe_rmi(filters) },
            max,
            filter_work,
        )?;
        push("PipeRMI", filters, &pipe);

        let dynamic = capture_normalized(
            SieveConfig { packs, ..SieveConfig::farm_drmi(filters) },
            max,
            filter_work,
        )?;
        push("FarmDRMI", filters, &dynamic);
    }
    Ok(points)
}

/// One row of the fault-degradation table: the same farm replay with
/// `killed` worker nodes crashing mid-run.
#[derive(Debug, Clone)]
pub struct DegradationRow {
    /// Worker nodes killed mid-run.
    pub killed: usize,
    /// Simulated end-to-end seconds.
    pub makespan: f64,
    /// Throughput relative to the undisturbed run (`baseline / makespan`).
    pub relative_throughput: f64,
    /// Tasks re-dispatched to surviving nodes.
    pub redispatched: usize,
    /// Cross-node messages (re-dispatches pay a fresh argument shipment).
    pub messages: usize,
}

/// The farm-under-failure degradation table: replay one captured FarmRMI
/// trace on the paper cluster, killing `0..=kills` worker nodes 30% into
/// the faithful makespan (detection + recovery cost 50 ms per re-dispatch).
/// Modelled costs keep the table deterministic: the only thing that varies
/// across rows is the fault timeline.
pub fn degradation(
    max: u64,
    packs: usize,
    filters: usize,
    kills: usize,
) -> WeaveResult<Vec<DegradationRow>> {
    let trace = capture_modelled(SieveConfig { packs, ..SieveConfig::farm_rmi(filters) }, max)?;
    let params = params_for("FarmRMI", 1.0, 1.0);
    let baseline = simulate(&trace, &params);
    let kill_at = baseline.makespan * 0.3;
    let mut rows = Vec::new();
    for killed in 0..=kills {
        let mut timeline = FaultTimeline::new().overhead(0.05);
        for node in 1..=killed {
            timeline = timeline.kill(node, kill_at);
        }
        let report = simulate_with_faults(&trace, &params, &timeline)?;
        rows.push(DegradationRow {
            killed,
            makespan: report.makespan,
            relative_throughput: baseline.makespan / report.makespan.max(1e-12),
            redispatched: report.redispatched,
            messages: report.messages,
        });
    }
    Ok(rows)
}

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Combination label.
    pub label: String,
    /// Partition column.
    pub partition: &'static str,
    /// Concurrency column.
    pub concurrency: &'static str,
    /// Distribution column.
    pub distribution: &'static str,
    /// Output equals the sequential sieve?
    pub correct: bool,
    /// Real in-process wall time at the validation size.
    pub wall: Duration,
}

/// Regenerate Table 1: assemble each combination for real (including the
/// in-process distribution fabric), check correctness, record wall time.
/// One Table 1 combination: config builder plus display columns.
type Table1Combo = (fn(usize) -> SieveConfig, &'static str, &'static str, &'static str);

pub fn table1(max: u64) -> WeaveResult<Vec<Table1Row>> {
    let reference = sequential_sieve(max);
    let combos: [Table1Combo; 5] = [
        (SieveConfig::farm_threads, "Farm", "Yes", "No"),
        (SieveConfig::pipe_rmi, "Pipeline", "Yes", "RMI"),
        (SieveConfig::farm_rmi, "Farm", "Yes", "RMI"),
        (SieveConfig::farm_drmi, "Dynamic Farm", "(merged)", "RMI"),
        (SieveConfig::farm_mpp, "Farm", "Yes", "MPP"),
    ];
    let mut rows = Vec::new();
    for (make, partition, concurrency, distribution) in combos {
        let config = make(4);
        let run = build_sieve(config);
        let (got, wall) = time(|| run_sieve(&run, max));
        rows.push(Table1Row {
            label: config.label(),
            partition,
            concurrency,
            distribution,
            correct: got? == reference,
            wall,
        });
    }
    Ok(rows)
}

/// Render figure points as aligned text columns (series × filters matrix).
pub fn render_points(title: &str, points: &[FigurePoint]) -> String {
    use std::fmt::Write;
    let mut series: Vec<String> = Vec::new();
    for p in points {
        if !series.contains(&p.series) {
            series.push(p.series.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<13}", "filters");
    for f in FILTER_COUNTS {
        let _ = write!(out, "{f:>9}");
    }
    let _ = writeln!(out);
    for s in &series {
        let _ = write!(out, "{s:<13}");
        for f in FILTER_COUNTS {
            match points.iter().find(|p| &p.series == s && p.filters == f) {
                Some(p) => {
                    let _ = write!(out, "{:>8.2}s", p.seconds);
                }
                None => {
                    let _ = write!(out, "{:>9}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render figure points as an ASCII line chart (series × filters), the
/// visual counterpart of the paper's plots: y = seconds, x = filter count,
/// one marker per series.
pub fn render_ascii_chart(title: &str, points: &[FigurePoint], height: usize) -> String {
    use std::fmt::Write;
    const MARKS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];
    let mut series: Vec<String> = Vec::new();
    for p in points {
        if !series.contains(&p.series) {
            series.push(p.series.clone());
        }
    }
    let max_y = points.iter().map(|p| p.seconds).fold(0.0f64, f64::max);
    if max_y <= 0.0 || series.is_empty() {
        return format!(
            "{title}
(no data)
"
        );
    }
    let height = height.max(4);
    let columns = FILTER_COUNTS.len();
    let col_width = 9;
    let mut grid = vec![vec![' '; columns * col_width]; height];
    for (si, s) in series.iter().enumerate() {
        for (ci, f) in FILTER_COUNTS.iter().enumerate() {
            if let Some(p) = points.iter().find(|p| &p.series == s && p.filters == *f) {
                let row = ((1.0 - p.seconds / max_y) * (height - 1) as f64).round() as usize;
                let col = ci * col_width + col_width / 2;
                let cell = &mut grid[row.min(height - 1)][col + si.min(col_width - 2)];
                *cell = MARKS[si % MARKS.len()];
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (i, row) in grid.iter().enumerate() {
        let y = max_y * (1.0 - i as f64 / (height - 1) as f64);
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y:>6.2}s |{}", line.trim_end());
    }
    let _ = write!(out, "        +");
    for _ in 0..columns {
        let _ = write!(out, "{:-<col_width$}", "-");
    }
    let _ = writeln!(out);
    let _ = write!(out, "         ");
    for f in FILTER_COUNTS {
        let _ = write!(out, "{f:^col_width$}");
    }
    let _ = writeln!(out);
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "         {} = {s}", MARKS[si % MARKS.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: u64 = 50_000;

    #[test]
    fn calibration_math() {
        assert!((calibrate_cpu_speed(Duration::from_secs_f64(6.3)) - 1.0).abs() < 1e-12);
        assert!((calibrate_cpu_speed(Duration::from_secs_f64(0.63)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn captured_traces_have_expected_shape() {
        let farm =
            capture_trace(SieveConfig { packs: 8, ..SieveConfig::farm_threads(4) }, SMALL).unwrap();
        let filters = farm.tasks.iter().filter(|t| t.signature.method == "filter").count();
        assert_eq!(filters, 8);

        let pipe =
            capture_trace(SieveConfig { packs: 8, ..SieveConfig::pipe_rmi(4) }, SMALL).unwrap();
        let filters = pipe.tasks.iter().filter(|t| t.signature.method == "filter").count();
        assert_eq!(filters, 8 * 4, "each pack crosses each stage");
    }

    #[test]
    fn weaving_inflation_is_small_and_positive() {
        let inflation = measure_weaving_inflation(SMALL, 3);
        assert!(inflation > 0.5, "nonsensical inflation {inflation}");
        assert!(inflation < 2.0, "weaving should not double execution time: {inflation}");
    }

    #[test]
    fn farm_beats_pipeline_in_replay() {
        // The paper: "The farm strategy is better than a pipeline partition
        // strategy in all cases." Modelled (deterministic) costs keep this
        // regression test independent of test-suite load; only the captured
        // *structure* varies, and that is what is under test.
        let pipe =
            capture_modelled(SieveConfig { packs: 8, ..SieveConfig::pipe_rmi(7) }, SMALL).unwrap();
        let farm =
            capture_modelled(SieveConfig { packs: 8, ..SieveConfig::farm_rmi(7) }, SMALL).unwrap();
        let pipe_t = replay(&pipe, "PipeRMI", 1.0, 1.0).makespan;
        let farm_t = replay(&farm, "FarmRMI", 1.0, 1.0).makespan;
        assert!(farm_t < pipe_t, "farm {farm_t} should beat pipeline {pipe_t}");
    }

    #[test]
    fn mpp_no_slower_than_rmi_on_the_same_farm_trace() {
        let trace =
            capture_modelled(SieveConfig { packs: 8, ..SieveConfig::farm_mpp(7) }, SMALL).unwrap();
        let mpp = replay(&trace, "FarmMPP", 1.0, 1.0).makespan;
        let rmi = replay(&trace, "FarmRMI", 1.0, 1.0).makespan;
        assert!(mpp <= rmi * 1.001, "MPP {mpp} vs RMI {rmi}");
    }

    #[test]
    fn degradation_table_slows_but_completes() {
        let rows = degradation(SMALL, 8, 4, 2).unwrap();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].relative_throughput - 1.0).abs() < 1e-9, "{rows:?}");
        assert_eq!(rows[0].redispatched, 0, "{rows:?}");
        // Each kill re-dispatches work and can only cost time, never data.
        for pair in rows.windows(2) {
            assert!(pair[1].makespan >= pair[0].makespan - 1e-9, "{rows:?}");
            assert!(pair[1].redispatched >= pair[0].redispatched, "{rows:?}");
        }
        assert!(rows[1].redispatched >= 1, "killing a worker node must orphan tasks: {rows:?}");
        assert!(rows[2].relative_throughput <= rows[1].relative_throughput + 1e-9, "{rows:?}");
    }

    #[test]
    fn table1_rows_validate() {
        let rows = table1(5_000).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.correct), "{rows:?}");
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["FarmThreads", "PipeRMI", "FarmRMI", "FarmDRMI", "FarmMPP"]);
    }

    #[test]
    fn ascii_chart_places_markers() {
        let points: Vec<FigurePoint> = FILTER_COUNTS
            .iter()
            .map(|&f| FigurePoint {
                series: "A".into(),
                filters: f,
                seconds: 6.0 / f as f64,
                messages: 0,
            })
            .chain(FILTER_COUNTS.iter().map(|&f| FigurePoint {
                series: "B".into(),
                filters: f,
                seconds: 3.0,
                messages: 0,
            }))
            .collect();
        let chart = render_ascii_chart("demo", &points, 10);
        assert!(chart.contains("demo"));
        assert!(chart.contains("o = A"));
        assert!(chart.contains("x = B"));
        assert!(chart.matches('o').count() >= FILTER_COUNTS.len());
        // Axis labels include the filter counts.
        assert!(chart.contains("16"));
    }

    #[test]
    fn ascii_chart_empty_input() {
        assert!(render_ascii_chart("t", &[], 8).contains("no data"));
    }

    #[test]
    fn render_points_formats_a_matrix() {
        let points = vec![
            FigurePoint { series: "A".into(), filters: 1, seconds: 1.5, messages: 0 },
            FigurePoint { series: "A".into(), filters: 4, seconds: 0.5, messages: 2 },
        ];
        let text = render_points("demo", &points);
        assert!(text.contains("demo"));
        assert!(text.contains("1.50s"));
        assert!(text.contains('-'), "missing cells render as dashes");
    }
}
