//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic mini property-testing framework: strategies are sampling
//! functions over a seeded xorshift RNG, the [`proptest!`] macro runs each
//! property for `ProptestConfig::cases` generated inputs, and the
//! `prop_assert*` macros report the failing values by panicking (no
//! shrinking). Seeds derive from the test's module path, so failures
//! reproduce across runs.

pub mod test_runner {
    /// Per-property configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (stable across runs).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name, mixed with a fixed golden-ratio constant.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `bool`.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A generator of values of one type. Unlike real proptest there is no
    /// shrinking: a strategy is just a clonable sampling function.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self.clone();
            BoxedStrategy { sample: Arc::new(move |rng| this.sample(rng)) }
        }

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy { sample: Arc::new(move |rng| f(self.sample(rng))) }
        }

        /// Keep only values passing `pred`, resampling up to a bounded number
        /// of attempts (panics if the predicate rejects everything).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            BoxedStrategy {
                sample: Arc::new(move |rng| {
                    for _ in 0..1000 {
                        let v = self.sample(rng);
                        if pred(&v) {
                            return v;
                        }
                    }
                    panic!("prop_filter({whence}): predicate rejected 1000 samples in a row");
                }),
            }
        }

        /// Build recursive values: `recurse` receives a strategy for the
        /// previous level and returns the next level; `depth` bounds nesting.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                // Mix the leaf back in so generated sizes stay bounded.
                current = one_of(vec![self.clone().boxed(), deeper]).boxed();
            }
            current
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T> {
        sample: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { sample: self.sample.clone() }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between strategies (the engine behind `prop_oneof!`).
    pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one alternative");
        OneOf { choices }
    }

    /// Strategy choosing uniformly among alternatives.
    pub struct OneOf<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf { choices: self.choices.clone() }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.choices.len() as u64) as usize;
            self.choices[ix].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        // Uniform in [start, end) from 53 random mantissa bits.
                        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        self.start + (self.end - self.start) * unit as $t
                    }
                }
            )*
        };
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    #[allow(non_snake_case)]
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.sample(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&str` strategies: the string is a regex-like pattern. Supported
    /// syntax: literals, `\\x` escapes, `.` (printable ASCII), `[a-z_*]`
    /// classes with ranges, and an optional `{m,n}` repeat on any atom.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    #[derive(Clone)]
    enum Atom {
        Literal(char),
        Dot,
        Class(Vec<(char, char)>),
    }

    fn printable(rng: &mut TestRng) -> char {
        (0x20 + rng.below(0x5f) as u8) as char
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => Atom::Literal(chars.next().expect("dangling escape in pattern")),
                '.' => Atom::Dot,
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().expect("unterminated class in pattern");
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().expect("unterminated range in class");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                other => Atom::Literal(other),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut min = 0usize;
                let mut max = 0usize;
                let mut cur = &mut min;
                for d in chars.by_ref() {
                    match d {
                        '}' => break,
                        ',' => {
                            max = 0;
                            cur = &mut max;
                        }
                        d => *cur = *cur * 10 + d.to_digit(10).expect("digit in repeat") as usize,
                    }
                }
                (min, max.max(min))
            } else {
                (1, 1)
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse_pattern(pattern) {
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Dot => out.push(printable(rng)),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi as u32 - lo as u32 + 1;
                        out.push(
                            char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                                .expect("valid class char"),
                        );
                    }
                }
            }
        }
        out
    }

    /// `any::<T>()` support: full-range arbitrary values.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any { _marker: std::marker::PhantomData }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Arbitrary values of `T` over the type's full range.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.element.sample(rng))
            }
        }
    }

    /// `Option`s of `element`: mostly `Some`, sometimes `None`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for uniform booleans.
    #[derive(Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property (no shrinking; panics with the
/// condition text).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `body` for `ProptestConfig::cases` sampled inputs. The `#[test]` attribute
/// is written by the caller (as with real proptest) and passed through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
}
