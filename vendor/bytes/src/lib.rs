//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply clonable view into shared storage
//! (`Arc<Vec<u8>>` plus a window); [`BytesMut`] is a growable builder that
//! [`BytesMut::freeze`]s into a [`Bytes`] without copying the payload. The
//! [`Buf`]/[`BufMut`] traits carry the little-endian accessors the
//! workspace's wire codec uses; reading through [`Buf`] advances the view, as
//! in the real crate. [`Bytes::try_into_mut`] hands a uniquely-owned buffer
//! back as a [`BytesMut`] with its capacity intact, which is what makes
//! frame pooling possible.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer; clones and slices share storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Copy the view into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Reclaim the underlying storage as a [`BytesMut`] when this is the
    /// only reference to it; returns `self` unchanged otherwise. The
    /// reclaimed builder is empty but keeps the allocation's capacity.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        let Bytes { data, start, end } = self;
        match Arc::try_unwrap(data) {
            Ok(mut vec) => {
                vec.clear();
                Ok(BytesMut { data: vec })
            }
            Err(data) => Err(Bytes { data, start, end }),
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Shorten the contents to `len` bytes; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

macro_rules! buf_accessors {
    ($($get:ident / $put:ident => $t:ty),* $(,)?) => {
        /// Read side: little-endian accessors that consume from the front.
        pub trait Buf {
            /// Bytes left to read.
            fn remaining(&self) -> usize;
            /// Consume and return the first `n` bytes.
            fn take_front(&mut self, n: usize) -> &[u8];

            /// Read one byte.
            fn get_u8(&mut self) -> u8 {
                self.take_front(1)[0]
            }
            /// Read one signed byte.
            fn get_i8(&mut self) -> i8 {
                self.get_u8() as i8
            }
            $(
                /// Read a little-endian integer.
                fn $get(&mut self) -> $t {
                    let mut raw = [0u8; std::mem::size_of::<$t>()];
                    raw.copy_from_slice(self.take_front(std::mem::size_of::<$t>()));
                    <$t>::from_le_bytes(raw)
                }
            )*
        }

        /// Write side: little-endian appenders.
        pub trait BufMut {
            /// Append raw bytes.
            fn put_slice(&mut self, slice: &[u8]);

            /// Append one byte.
            fn put_u8(&mut self, v: u8) {
                self.put_slice(&[v]);
            }
            /// Append one signed byte.
            fn put_i8(&mut self, v: i8) {
                self.put_u8(v as u8);
            }
            $(
                /// Append a little-endian integer.
                fn $put(&mut self, v: $t) {
                    self.put_slice(&v.to_le_bytes());
                }
            )*
        }
    };
}

buf_accessors! {
    get_u16_le / put_u16_le => u16,
    get_u32_le / put_u32_le => u32,
    get_u64_le / put_u64_le => u64,
    get_i16_le / put_i16_le => i16,
    get_i32_le / put_i32_le => i32,
    get_i64_le / put_i64_le => i64,
    get_f32_le / put_f32_le => f32,
    get_f64_le / put_f64_le => f64,
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun");
        let start = self.start;
        self.start += n;
        &self.data[start..start + n]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*rest, &[3, 4, 5]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }

    #[test]
    fn try_into_mut_reclaims_unique_buffers() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u64_le(9);
        let cap = buf.capacity();
        let frozen = buf.freeze();
        let reclaimed = frozen.try_into_mut().expect("sole owner reclaims");
        assert!(reclaimed.is_empty());
        assert_eq!(reclaimed.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn try_into_mut_fails_when_shared() {
        let frozen = Bytes::from(vec![1, 2, 3]);
        let alias = frozen.clone();
        let back = frozen.try_into_mut().expect_err("shared buffer cannot be reclaimed");
        assert_eq!(back, alias);
    }

    #[test]
    fn clear_keeps_capacity_and_deref_mut_patches() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_u8(0xAB);
        // Patch the placeholder length in place (pack framing does this).
        buf[0..4].copy_from_slice(&7u32.to_le_bytes());
        let mut b = buf.clone().freeze();
        assert_eq!(b.get_u32_le(), 7);
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 5);
    }
}
