//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small API subset it actually uses, implemented on
//! `std::sync`. Semantics match `parking_lot` where the workspace depends on
//! them:
//!
//! * locks are not poisoned — a panic while holding a guard does not wedge
//!   later acquisitions;
//! * [`Condvar::wait`] takes the guard by `&mut` instead of by value;
//! * [`ReentrantMutex`] allows the owning thread to re-lock, and
//!   [`ReentrantMutex::lock_arc`] returns an owned guard
//!   ([`ArcReentrantMutexGuard`]) that keeps the mutex alive.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- Mutex ------------------------------------------------------------------

/// Mutual exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

// ---- RwLock -----------------------------------------------------------------

/// Reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---- Condvar ----------------------------------------------------------------

/// Result of a timed condition wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable; pairs with [`Mutex`]. Unlike `std`, `wait` reborrows
/// the guard instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// ---- ReentrantMutex ---------------------------------------------------------

/// Process-unique tag for the current thread (std's `ThreadId::as_u64` is
/// unstable; this is the usual thread-local counter workaround).
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// A mutex the owning thread may lock any number of times.
///
/// Guards give shared (`&T`) access only, exactly like `parking_lot`; interior
/// mutability (e.g. `RefCell`) provides mutation under the monitor.
///
/// The uncontended path is a single CAS on the owner tag — the weaving
/// runtime takes this lock once per woven call, so it must not serialise
/// callers on an OS mutex. The mutex/condvar pair exists only to park
/// threads that actually found the monitor held.
pub struct ReentrantMutex<T: ?Sized> {
    owner: AtomicU64,     // thread tag of the holder; 0 = unowned
    depth: AtomicUsize,   // recursion depth; touched only by the owner
    waiters: AtomicUsize, // threads parked (or about to park) below
    park: std::sync::Mutex<()>,
    cond: std::sync::Condvar,
    data: UnsafeCell<T>,
}

// Mutual exclusion makes `&T` accessible from one thread at a time, so `Send`
// on the payload suffices (same bounds as parking_lot's ReentrantMutex).
unsafe impl<T: ?Sized + Send> Send for ReentrantMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for ReentrantMutex<T> {}

impl<T> ReentrantMutex<T> {
    /// A new unlocked re-entrant mutex.
    pub const fn new(value: T) -> Self {
        ReentrantMutex {
            owner: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            park: std::sync::Mutex::new(()),
            cond: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T: ?Sized> ReentrantMutex<T> {
    fn acquire(&self) {
        let me = thread_tag();
        if self.owner.load(Ordering::Relaxed) == me {
            self.depth.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.owner.compare_exchange(0, me, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            self.depth.store(1, Ordering::Relaxed);
            return;
        }
        self.acquire_slow(me);
    }

    #[cold]
    fn acquire_slow(&self, me: u64) {
        // SeqCst on `waiters` and on the CAS pairs with the releaser's
        // SeqCst store/load (Dekker pattern): either the releaser sees our
        // registration and notifies, or our CAS sees its store of 0.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
        while self.owner.compare_exchange(0, me, Ordering::SeqCst, Ordering::SeqCst).is_err() {
            guard = self.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        self.depth.store(1, Ordering::Relaxed);
    }

    fn release(&self) {
        debug_assert_eq!(
            self.owner.load(Ordering::Relaxed),
            thread_tag(),
            "unlock from non-owning thread"
        );
        if self.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.owner.store(0, Ordering::SeqCst);
            if self.waiters.load(Ordering::SeqCst) != 0 {
                // Take the park lock before notifying so a waiter between its
                // failed CAS and `cond.wait` cannot miss the wakeup.
                let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
                self.cond.notify_one();
            }
        }
    }

    /// Lock (re-entrantly) and return a borrowing guard.
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        self.acquire();
        ReentrantMutexGuard { mutex: self }
    }

    /// Lock (re-entrantly) through an `Arc`, returning an owned guard that
    /// keeps the mutex alive for the guard's lifetime.
    pub fn lock_arc(this: &Arc<Self>) -> ArcReentrantMutexGuard<T> {
        this.acquire();
        ArcReentrantMutexGuard { mutex: Arc::clone(this) }
    }
}

/// Borrowing guard for [`ReentrantMutex`].
pub struct ReentrantMutexGuard<'a, T: ?Sized> {
    mutex: &'a ReentrantMutex<T>,
}

impl<T: ?Sized> Deref for ReentrantMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safe: this thread holds the monitor, and guards only hand out `&T`.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for ReentrantMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.release();
    }
}

/// Owned guard for [`ReentrantMutex`] obtained via [`ReentrantMutex::lock_arc`].
pub struct ArcReentrantMutexGuard<T: ?Sized> {
    mutex: Arc<ReentrantMutex<T>>,
}

impl<T: ?Sized> Deref for ArcReentrantMutexGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for ArcReentrantMutexGuard<T> {
    fn drop(&mut self) {
        self.mutex.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(7);
        let (a, b) = (l.read(), l.read());
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn reentrant_same_thread() {
        let m = Arc::new(ReentrantMutex::new(std::cell::RefCell::new(0)));
        let g1 = m.lock();
        let g2 = ReentrantMutex::lock_arc(&m);
        *g1.borrow_mut() += 1;
        *g2.borrow_mut() += 1;
        drop(g1);
        drop(g2);
        assert_eq!(*m.lock().borrow(), 2);
    }

    #[test]
    fn reentrant_excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new(std::cell::RefCell::new(0)));
        let g = m.lock();
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            let g = m2.lock();
            *g.borrow_mut() = 5;
        });
        std::thread::sleep(Duration::from_millis(10));
        *g.borrow_mut() = 1;
        drop(g);
        t.join().unwrap();
        assert_eq!(*m.lock().borrow(), 5);
    }
}
