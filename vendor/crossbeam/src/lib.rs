//! Offline stand-in for the `crossbeam` crate: multi-producer/multi-consumer
//! channels with disconnect semantics (built on a mutex-guarded deque and two
//! condition variables) plus the `deque` work-stealing primitives. Only the
//! API subset this workspace uses is provided.

pub mod deque;

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn new(capacity: Option<usize>) -> Arc<Self> {
            Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                capacity,
                senders: AtomicUsize::new(1),
                receivers: AtomicUsize::new(1),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            })
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; carries
    /// the unsent message back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Debug without a `T: Debug` bound, matching upstream crossbeam, so
    // `Result::expect` works for non-Debug payloads like boxed closures.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message available.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half of a channel. Clonable; the channel disconnects when
    /// the last clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (MPMC): clones steal from the
    /// same queue.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(None);
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// A bounded MPMC channel; `send` blocks while full. Capacity 0 is
    /// rounded up to 1 (true rendezvous is not needed by this workspace).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new(Some(capacity.max(1)));
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full. Errors
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = shared.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Send a whole batch under a single lock acquisition with a single
        /// wakeup (shim extension — upstream takes one `send` per message).
        /// On a bounded channel the sender waits for room element by element,
        /// still holding only one lock session per wait. When every receiver
        /// is gone the not-yet-queued remainder is handed back.
        pub fn send_batch<I>(&self, values: I) -> Result<(), SendError<Vec<T>>>
        where
            I: IntoIterator<Item = T>,
        {
            let mut iter = values.into_iter();
            let shared = &self.shared;
            let mut pushed = false;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    drop(queue);
                    return Err(SendError(iter.collect()));
                }
                if let Some(cap) = shared.capacity {
                    if queue.len() >= cap {
                        if pushed {
                            // Let consumers drain what is already queued.
                            shared.not_empty.notify_all();
                        }
                        queue = shared.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
                        continue;
                    }
                }
                match iter.next() {
                    Some(value) => {
                        queue.push_back(value);
                        pushed = true;
                    }
                    None => break,
                }
            }
            drop(queue);
            if pushed {
                shared.not_empty.notify_all();
            }
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty. Errors when
        /// the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared.not_empty.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, result) = shared
                    .not_empty
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator; drops the receiver when exhausted.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the 1 is consumed
            });
            thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn mpmc_workers_drain_disjointly() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(thread::spawn(move || rx.iter().count()));
            }
            drop(rx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn send_batch_delivers_everything() {
            let (tx, rx) = unbounded();
            tx.send_batch(0..50).unwrap();
            assert_eq!(rx.len(), 50);
            assert_eq!(rx.try_iter().sum::<i32>(), (0..50).sum());
        }

        #[test]
        fn send_batch_respects_bounded_capacity() {
            let (tx, rx) = bounded(4);
            let t = thread::spawn(move || {
                tx.send_batch(0..16).unwrap();
            });
            // The sender parks on the full channel until this side drains it.
            let mut got = Vec::new();
            while got.len() < 16 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..16).collect::<Vec<_>>());
        }

        #[test]
        fn send_batch_returns_remainder_on_disconnect() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            let err = tx.send_batch(0..3).unwrap_err();
            assert_eq!(err.0, vec![0, 1, 2]);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn try_and_timeout_recv() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
