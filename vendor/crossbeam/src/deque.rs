//! Offline stand-in for the `crossbeam-deque` work-stealing primitives,
//! exposed under `crossbeam::deque` exactly as the real umbrella crate does.
//!
//! The API mirrors upstream — [`Worker`]/[`Stealer`] pairs, a global
//! [`Injector`], and the [`Steal`] result — so swapping the real crate back
//! in keeps call sites compiling. The implementation is deliberately simple:
//! each queue is a mutex-guarded `VecDeque`, which preserves the *sharding*
//! that makes work stealing scale (each worker owns its deque; the mutex is
//! uncontended except when a peer steals) without the unsafe Chase-Lev
//! buffer. Two documented deviations from upstream:
//!
//! * the shim's `Worker` is `Sync`, so a pool may keep per-worker handles in
//!   shared state instead of the thread-local-owner pattern the lock-free
//!   original requires;
//! * [`Injector::push_batch`] accepts a whole batch under one lock — the
//!   pack-granular submission path the thread pool uses.
//!
//! The mutex-backed queues never need to retry, so [`Steal::Retry`] is never
//! returned here; consumers must still handle it (upstream does return it),
//! and the loops in this workspace do.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Most tasks moved per steal: half the victim's queue, capped here.
const MAX_BATCH: usize = 32;

/// Outcome of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and may be retried (never produced by this
    /// shim; kept for upstream API compatibility).
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// True when the steal found the queue empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True when a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Lifo,
    Fifo,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Shared<T> {
    fn new() -> Arc<Self> {
        Arc::new(Shared { queue: Mutex::new(VecDeque::new()) })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Move up to `MAX_BATCH` tasks (at most half the queue, at least one
    /// when non-empty) from the *steal end* (front) into `dest`, returning
    /// the first.
    fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut grabbed = {
            let mut queue = self.lock();
            if queue.is_empty() {
                return Steal::Empty;
            }
            let take = queue.len().div_ceil(2).min(MAX_BATCH);
            queue.drain(..take).collect::<VecDeque<T>>()
        };
        // `dest`'s lock is taken only after this queue's lock is released, so
        // two workers stealing from each other cannot deadlock.
        let first = grabbed.pop_front().expect("batch is non-empty");
        if !grabbed.is_empty() {
            let mut dq = dest.shared.lock();
            dq.extend(grabbed);
        }
        Steal::Success(first)
    }

    fn steal_one(&self) -> Steal<T> {
        match self.lock().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

/// The owner's end of a work-stealing deque. Pushes always go to the back;
/// the LIFO flavour pops the back (cache-hot, just-spawned tasks first) while
/// thieves always take from the front (the oldest, coldest tasks).
pub struct Worker<T> {
    shared: Arc<Shared<T>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A deque whose owner pops its most recently pushed task first.
    pub fn new_lifo() -> Self {
        Worker { shared: Shared::new(), flavor: Flavor::Lifo }
    }

    /// A deque whose owner pops in push order.
    pub fn new_fifo() -> Self {
        Worker { shared: Shared::new(), flavor: Flavor::Fifo }
    }

    /// A stealing handle onto this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { shared: self.shared.clone() }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.shared.lock().push_back(task);
    }

    /// Pop a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        match self.flavor {
            Flavor::Lifo => self.shared.lock().pop_back(),
            Flavor::Fifo => self.shared.lock().pop_front(),
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

/// A cloneable stealing handle onto some [`Worker`]'s deque.
pub struct Stealer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Stealer<T> {
    /// Steal one task from the front of the victim's deque.
    pub fn steal(&self) -> Steal<T> {
        self.shared.steal_one()
    }

    /// Steal a batch from the victim, keep the first task and park the rest
    /// in `dest` (the thief's own deque).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        self.shared.steal_batch_and_pop(dest)
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { shared: self.shared.clone() }
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer").field("len", &self.len()).finish()
    }
}

/// A FIFO queue shared by all workers — the entry point for tasks submitted
/// from outside the pool.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector { queue: Mutex::new(VecDeque::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Push one task.
    pub fn push(&self, task: T) {
        self.lock().push_back(task);
    }

    /// Push a whole batch under a single lock acquisition (shim extension —
    /// upstream takes one `push` per task).
    pub fn push_batch(&self, tasks: impl IntoIterator<Item = T>) {
        self.lock().extend(tasks);
    }

    /// Steal one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match self.lock().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch, keep the first task and park the rest in `dest`.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut grabbed = {
            let mut queue = self.lock();
            if queue.is_empty() {
                return Steal::Empty;
            }
            let take = queue.len().div_ceil(2).min(MAX_BATCH);
            queue.drain(..take).collect::<VecDeque<T>>()
        };
        let first = grabbed.pop_front().expect("batch is non-empty");
        if !grabbed.is_empty() {
            let mut dq = dest.shared.lock();
            dq.extend(grabbed);
        }
        Steal::Success(first)
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops newest; thief steals oldest.
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn fifo_owner_pops_in_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_batch_lands_in_dest() {
        let inj = Injector::new();
        inj.push_batch(0..10);
        let w = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&w);
        assert_eq!(got, Steal::Success(0));
        // Half of ten: five grabbed, one returned, four parked in dest.
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn stealer_batch_halves_the_victim() {
        let victim = Worker::new_lifo();
        for i in 0..8 {
            victim.push(i);
        }
        let thief = Worker::new_lifo();
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert_eq!(got, Steal::Success(0));
        assert_eq!(thief.len(), 3);
        assert_eq!(victim.len(), 4);
    }

    #[test]
    fn cross_steal_does_not_deadlock() {
        use std::sync::Arc;
        // Two workers stealing from each other concurrently: the batch move
        // never holds both locks, so this must terminate.
        let a = Arc::new(Worker::new_lifo());
        let b = Arc::new(Worker::new_lifo());
        for i in 0..1000 {
            a.push(i);
            b.push(i);
        }
        let (sa, sb) = (a.stealer(), b.stealer());
        let (a2, b2) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || {
            let mut got = 0;
            while !sb.steal_batch_and_pop(&a2).is_empty() {
                got += 1;
            }
            got
        });
        let t2 = std::thread::spawn(move || {
            let mut got = 0;
            while !sa.steal_batch_and_pop(&b2).is_empty() {
                got += 1;
            }
            got
        });
        t1.join().unwrap();
        t2.join().unwrap();
    }
}
