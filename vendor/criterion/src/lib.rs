//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock timing harness exposing the API subset this
//! workspace's benches use: benchmark groups, `iter`/`iter_batched`, sample
//! sizes and the `criterion_group!`/`criterion_main!` entry points. Each
//! benchmark reports min/median/mean per-iteration time to stdout. CLI
//! arguments (`--bench`, filters) are accepted; a positional filter selects
//! benchmarks by substring match.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost (accepted, not tuned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batches are large.
    SmallInput,
    /// Large per-iteration inputs: batches are small.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier accepted by `bench_function` (string-likes only).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args that are not flags act as a substring filter
        // (matching `cargo bench -- <filter>`).
        let filter = std::env::args().skip(1).find(|a| {
            !a.starts_with('-') && !a.ends_with("weaving_overhead") && !a.ends_with("ablations")
        });
        Criterion { filter }
    }
}

impl Criterion {
    /// Accept-and-ignore CLI configuration (kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().0;
        let mut group = BenchmarkGroup { criterion: self, name: String::new(), sample_size: 20 };
        group.run_named(&name, f);
        self
    }

    fn selected(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = if self.name.is_empty() {
            id.into().0
        } else {
            format!("{}/{}", self.name, id.into().0)
        };
        self.run_named(&full.clone(), f);
        self
    }

    /// Finish the group (marker only; results are printed as they complete).
    pub fn finish(self) {}

    fn run_named<F>(&mut self, full_name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.criterion.selected(full_name) {
            return;
        }
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(full_name);
    }
}

/// Passed to each benchmark closure; drives the timing loops.
pub struct Bencher {
    samples: Vec<Duration>, // per-iteration durations, one per sample
    sample_size: usize,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(8);

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample runs ≥ TARGET_SAMPLE.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample = (iters_per_sample * 2).max(1);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        // One setup+run per sample: correct (if noisier) for any batch size.
        let warmup = setup();
        std_black_box(routine(warmup));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!("{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}", min, median, mean);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($rest:tt)*) => { $crate::criterion_group!($group, $($rest)*); };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_samples() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 3 };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn batched_runs_once_per_sample() {
        let mut b = Bencher { samples: Vec::new(), sample_size: 4 };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(setups, 5); // warmup + 4 samples
        assert_eq!(b.samples.len(), 4);
    }
}
