//! Quickstart: the paper's §3 AspectJ tour, in weavepar.
//!
//! Reproduces Figures 1–3: a `Point` class, a *static crosscutting* aspect
//! (introduce a `migrate` method and a `Serializable` parent without touching
//! the class) and a *dynamic crosscutting* logging aspect over `Point.move*`
//! — then shows the weaving being unplugged at run time.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use weavepar::prelude::*;

/// Figure 1 — the Point class.
struct Point {
    x: i64,
    y: i64,
}

weavepar::weaveable! {
    class Point as PointProxy {
        fn new() -> Self { Point { x: 0, y: 0 } }
        fn move_x(&mut self, delta: i64) { self.x += delta; }
        fn move_y(&mut self, delta: i64) { self.y += delta; }
        fn position(&mut self) -> (i64, i64) { (self.x, self.y) }
    }
}

fn main() -> WeaveResult<()> {
    let weaver = Weaver::new();

    // Figure 2 — static crosscutting: declare a parent and introduce a
    // method, all from outside the class.
    weaver.intertype().declare_tag("Point", "Serializable");
    weaver.intertype().add_method(
        "Point",
        "migrate",
        Arc::new(|_weaver, obj, mut args: Args| {
            let node: String = args.take(0)?;
            println!("Migrate {obj} to {node}");
            Ok(weavepar::ret!())
        }),
    );

    // Figure 3 — dynamic crosscutting: log every call to Point.move*.
    let logging = Aspect::named("Logging")
        .around(Pointcut::call("Point.move*"), |inv: &mut Invocation| {
            println!("Move called: {}", inv.signature());
            inv.proceed()
        })
        .build();
    let plugged = weaver.plug(logging);

    // The main method of Figure 1.
    let p = PointProxy::construct(&weaver)?;
    p.move_x(10)?;
    p.move_y(5)?;
    println!("position = {:?}", p.position()?);

    // The introduced method and parent are visible.
    println!("Point is Serializable: {}", weaver.intertype().has_tag("Point", "Serializable"));
    weaver.invoke_call_dyn(p.id(), "migrate", weavepar::args!["node-3".to_string()])?;

    // Unplug the logging aspect: the core is oblivious either way.
    weaver.unplug(&plugged);
    p.move_x(1)?; // no log line
    println!("position after silent move = {:?}", p.position()?);

    Ok(())
}
