//! Heat diffusion on the heartbeat protocol: block partition with
//! per-iteration boundary exchange (the third strategy category of the
//! paper's conclusion).
//!
//! Run with: `cargo run --release --example heat_heartbeat`

use weavepar_apps::heat::{solve_heartbeat, solve_heartbeat_concurrent, solve_sequential};

fn main() {
    let (len, iterations) = (60u64, 4_000u64);
    let (left, right) = (100.0, 0.0);

    let reference = solve_sequential(len, 0.0, left, right, iterations);
    println!(
        "sequential steady profile (first/last): {:.2} / {:.2}",
        reference[0],
        reference[len as usize - 1]
    );

    for workers in [1usize, 2, 4, 6] {
        let got =
            solve_heartbeat(len, 0.0, left, right, iterations, workers).expect("heartbeat failed");
        let max_err = got.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        println!("heartbeat, {workers} block(s): max deviation from sequential = {max_err:.2e}");
    }

    let got = solve_heartbeat_concurrent(len, 0.0, left, right, iterations, 4)
        .expect("concurrent heartbeat failed");
    let max_err = got.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("heartbeat + concurrency: max deviation = {max_err:.2e}");

    // A small temperature plot.
    println!("\ntemperature profile (▉ = 4 degrees):");
    for (i, v) in reference.iter().enumerate().step_by(4) {
        let bars = (*v / 4.0).round() as usize;
        println!("cell {i:>2}: {}", "▉".repeat(bars));
    }
}
