//! Merge sort on the divide-and-conquer partition aspect (§4.1's remark on
//! object creation at call join points).
//!
//! Run with: `cargo run --release --example sort_divide_conquer`

use std::time::Instant;

use weavepar_apps::sort::sort_divide_conquer;

fn pseudo_random(n: usize, mut seed: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        })
        .collect()
}

fn main() {
    let xs = pseudo_random(400_000, 2026);
    let mut expect = xs.clone();
    let t0 = Instant::now();
    expect.sort_unstable();
    println!("std sort:                     {:?}", t0.elapsed());

    for (label, threshold, concurrent) in [
        ("divide & conquer, sequential", 20_000usize, false),
        ("divide & conquer, concurrent", 20_000, true),
    ] {
        let t0 = Instant::now();
        let got = sort_divide_conquer(xs.clone(), threshold, concurrent).expect("sort failed");
        let elapsed = t0.elapsed();
        println!("{label}: {elapsed:?}  ({})", if got == expect { "correct" } else { "MISMATCH" });
    }
}
