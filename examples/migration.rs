//! Object migration — the paper's Figure 2, operational.
//!
//! Figure 2 introduces a `migrate` method into class `Point` by static
//! crosscutting. Here the same introduction really moves object state
//! between cluster nodes: snapshot on the old node, restore on the new one,
//! stub repointed — while the core class stays untouched.
//!
//! Run with: `cargo run --release --example migration`

use weavepar::distribution::{introduce_migration, migrate_object};
use weavepar::prelude::*;

/// The core class: a counter that accumulates state worth preserving.
struct Visits {
    count: u64,
}

weavepar::weaveable! {
    class Visits as VisitsProxy {
        fn new() -> Self { Visits { count: 0 } }
        fn visit(&mut self) -> u64 {
            self.count += 1;
            self.count
        }
    }
}

fn main() -> WeaveResult<()> {
    // Middleware knowledge: method marshalling + a state codec for migration.
    let marshal = MarshalRegistry::new();
    marshal.register::<(), ()>("Visits", "new");
    marshal.register::<(), u64>("Visits", "visit");
    marshal.register_state::<Visits, u64, _, _>(|v| v.count, |count| Visits { count });

    let fabric = InProcFabric::new(4, marshal);
    fabric.register_class::<Visits>();

    let weaver = Weaver::new();
    weaver.plug(
        RmiConfig::new("Visits", Pointcut::call("Visits.visit"), fabric.clone())
            .placement(Policy::fixed(0))
            .aspect("Distribution"),
    );
    // Static crosscutting: introduce `migrate` without touching the class.
    introduce_migration(&weaver, "Visits", fabric.clone());

    let v = VisitsProxy::construct(&weaver)?;
    println!("visits: {}, {}, {}", v.visit()?, v.visit()?, v.visit()?);
    println!(
        "object lives on node 0 (instances there: {})",
        fabric.node(0)?.weaver().space().len()
    );

    for node in [2usize, 1, 3] {
        let landed = migrate_object(&weaver, v.id(), node)?;
        let count = v.visit()?;
        println!(
            "migrated to node {landed}; count continued at {count} \
             (node {node} instances: {})",
            fabric.node(node)?.weaver().space().len()
        );
    }

    println!("node 0 instances after the moves: {}", fabric.node(0)?.weaver().space().len());
    println!("class tags: Migratable={}", weaver.intertype().has_tag("Visits", "Migratable"));
    Ok(())
}
