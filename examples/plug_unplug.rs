//! The incremental-development workflow, step by step: the paper's central
//! demonstration that parallelisation concerns can be added — and removed —
//! without touching core functionality.
//!
//! Run with: `cargo run --release --example plug_unplug`

use weavepar::prelude::*;
use weavepar_apps::sieve::{build_sieve, run_sieve, sequential_sieve, SieveConfig};

fn main() -> WeaveResult<()> {
    let max = 200_000;
    let reference = sequential_sieve(max);
    println!("step 0  sequential core:               {} primes", reference.len());

    // Step 1: plug the farm partition (still single-threaded).
    let run = build_sieve(SieveConfig { concurrency: false, ..SieveConfig::farm_threads(4) });
    let got = run_sieve(&run, max)?;
    println!(
        "step 1  + partition (farm, 4 filters): {} primes, {}",
        got.len(),
        status(&got, &reference)
    );
    println!("        stack: {}", run.stack.describe());

    // Step 2: plug the concurrency module — now genuinely parallel.
    let run = build_sieve(SieveConfig::farm_threads(4));
    let got = run_sieve(&run, max)?;
    println!(
        "step 2  + concurrency:                 {} primes, {}",
        got.len(),
        status(&got, &reference)
    );

    // Step 3: plug the distribution aspect — remote filters over RMI.
    let run = build_sieve(SieveConfig::farm_rmi(4));
    let got = run_sieve(&run, max)?;
    println!(
        "step 3  + distribution (RMI):          {} primes, {}",
        got.len(),
        status(&got, &reference)
    );
    println!("        stack: {}", run.stack.describe());
    println!(
        "        name server bindings: {:?}",
        run.fabric.as_ref().unwrap().nameserver().names()
    );

    // Step 4: debugging — disable concurrency on the fly, run, re-enable.
    run.stack.set_enabled(Concern::Concurrency, false);
    let got = run_sieve(&run, max)?;
    println!(
        "step 4  concurrency disabled (debug):  {} primes, {}",
        got.len(),
        status(&got, &reference)
    );
    run.stack.set_enabled(Concern::Concurrency, true);

    // Step 5: unplug everything — back to the sequential program.
    run.stack.unplug(Concern::Partition);
    run.stack.unplug(Concern::Concurrency);
    run.stack.unplug(Concern::Distribution);
    let got = run_sieve(&run, max)?;
    println!(
        "step 5  all concerns unplugged:        {} primes, {}",
        got.len(),
        status(&got, &reference)
    );
    println!("        stack: {}", run.stack.describe());

    Ok(())
}

fn status(got: &[u64], reference: &[u64]) -> &'static str {
    if got == reference {
        "correct"
    } else {
        "MISMATCH"
    }
}
