//! Swapping the distribution middleware (§4.3): the same farmed sieve over
//! the RMI-style and the MPP-style stacks, plus a hybrid where two classes
//! use different middlewares on one weaver.
//!
//! Run with: `cargo run --release --example middleware_swap`

use std::time::Instant;

use weavepar_apps::sieve::{build_sieve, run_sieve, sequential_sieve, SieveConfig};

fn main() {
    let max = 500_000;
    let reference = sequential_sieve(max);

    for config in [SieveConfig::farm_rmi(4), SieveConfig::farm_mpp(4), SieveConfig::farm_drmi(4)] {
        let run = build_sieve(config);
        let t0 = Instant::now();
        let got = run_sieve(&run, max).expect("sieve failed");
        let elapsed = t0.elapsed();
        let names = run.fabric.as_ref().map(|f| f.nameserver().len()).unwrap_or(0);
        println!(
            "{:<9} {:>10?}  {}  ({} name-server bindings)",
            config.label(),
            elapsed,
            if got == reference { "correct" } else { "MISMATCH" },
            names,
        );
    }

    println!();
    println!("The swap is one aspect: same core class, same driver, same results.");
    println!("RMI registers PS<n> names; MPP addresses nodes directly (Figures 14/15).");
}
