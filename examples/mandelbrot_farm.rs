//! Mandelbrot over the farm protocols: static farm vs dynamic (demand-driven)
//! farm on a workload with wildly uneven row costs, plus a small ASCII
//! rendering to prove the output is real.
//!
//! Run with: `cargo run --release --example mandelbrot_farm`

use std::time::Instant;

use weavepar_apps::mandel::{render_dynamic, render_farmed, render_sequential};

fn main() {
    let (width, height, max_iter) = (96u64, 32u64, 1_500u64);

    let t0 = Instant::now();
    let reference = render_sequential(width, height, max_iter);
    let seq = t0.elapsed();
    println!("sequential render:    {seq:?}");

    let t0 = Instant::now();
    let farmed = render_farmed(width, height, max_iter, 4, 8, true).expect("farm failed");
    let farm_time = t0.elapsed();
    println!("static farm (4 wrk):  {farm_time:?}  ({})", check(&farmed, &reference));

    let t0 = Instant::now();
    let dynamic = render_dynamic(width, height, max_iter, 4, 16).expect("dynamic farm failed");
    let dyn_time = t0.elapsed();
    println!("dynamic farm (4 wrk): {dyn_time:?}  ({})", check(&dynamic, &reference));

    // ASCII art from the iteration counts.
    println!();
    let ramp: &[u8] = b" .:-=+*#%@";
    for row in 0..height {
        let mut line = String::with_capacity(width as usize);
        for col in 0..width {
            let count = reference[(row * width + col) as usize];
            let idx = if count >= max_iter {
                ramp.len() - 1
            } else {
                (count as usize * (ramp.len() - 1)) / max_iter as usize
            };
            line.push(ramp[idx] as char);
        }
        println!("{line}");
    }
}

fn check(got: &[u64], reference: &[u64]) -> &'static str {
    if got == reference {
        "matches sequential"
    } else {
        "MISMATCH"
    }
}
