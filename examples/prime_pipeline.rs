//! The paper's §5 case study end to end: the prime sieve under each of the
//! Table 1 module combinations, with wall-clock timings on this machine.
//!
//! Run with: `cargo run --release --example prime_pipeline [max]`

use std::time::Instant;

use weavepar_apps::sieve::{
    build_sieve, run_handcoded_rmi, run_sieve, sequential_sieve, SieveConfig,
};

fn main() {
    let max: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);

    println!("prime sieve up to {max}");

    let t0 = Instant::now();
    let reference = sequential_sieve(max);
    let seq_time = t0.elapsed();
    println!("sequential: {} primes in {seq_time:?}", reference.len());

    let filters = 4;
    let combos = [
        SieveConfig::sequential_pipeline(filters),
        SieveConfig::farm_threads(filters),
        SieveConfig::pipe_rmi(filters),
        SieveConfig::farm_rmi(filters),
        SieveConfig::farm_drmi(filters),
        SieveConfig::farm_mpp(filters),
    ];

    println!("\n{:<12} {:>12} {:>10}  result", "combination", "time", "vs seq");
    for config in combos {
        let run = build_sieve(config);
        let t0 = Instant::now();
        let got = run_sieve(&run, max).expect("sieve failed");
        let elapsed = t0.elapsed();
        let ok = if got == reference { "ok" } else { "MISMATCH" };
        println!(
            "{:<12} {:>12?} {:>9.2}x  {ok}",
            config.label(),
            elapsed,
            seq_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-12),
        );
    }

    // Figure 16's baseline: the same pipeline hand-written against the
    // middleware, no weaving anywhere.
    let t0 = Instant::now();
    let handcoded = run_handcoded_rmi(max, filters, 50, 7).expect("handcoded failed");
    let elapsed = t0.elapsed();
    let ok = if handcoded == reference { "ok" } else { "MISMATCH" };
    println!(
        "{:<12} {:>12?} {:>9.2}x  {ok}",
        "Java (hand)",
        elapsed,
        seq_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-12)
    );
}
