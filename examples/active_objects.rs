//! Active objects — the ABCL execution model from the paper's related work
//! (§2), as a pluggable concurrency module.
//!
//! Each object gets a mailbox and a server thread draining it in issue
//! order; calls return futures. Plugging this instead of the thread-per-call
//! concurrency module changes the execution discipline without touching core
//! code or the partition aspect.
//!
//! Run with: `cargo run --release --example active_objects`

use weavepar::prelude::*;

/// A bank account: the classic example where per-object call ordering
/// matters.
struct Account {
    balance: i64,
    history: Vec<i64>,
}

weavepar::weaveable! {
    class Account as AccountProxy {
        fn new(opening: i64) -> Self {
            Account { balance: opening, history: vec![opening] }
        }
        fn deposit(&mut self, amount: i64) -> i64 {
            self.balance += amount;
            self.history.push(self.balance);
            self.balance
        }
        fn history(&mut self) -> Vec<i64> {
            self.history.clone()
        }
    }
}

fn main() -> WeaveResult<()> {
    let weaver = Weaver::new();
    let (aspect, runtime) =
        active_object_aspect("ActiveObjects", Pointcut::call("Account.deposit"));
    weaver.plug(aspect);

    let accounts: Vec<_> =
        (0..3).map(|i| AccountProxy::construct(&weaver, i * 100)).collect::<WeaveResult<_>>()?;

    // Fire 10 deposits at each account — asynchronously, interleaved.
    let mut futures = Vec::new();
    for (i, account) in accounts.iter().enumerate() {
        for k in 1..=10i64 {
            let ret = account.handle().call("deposit", weavepar::args![k])?;
            futures.push((i, future_ret::<i64>(ret)?));
        }
    }

    // Futures resolve to the balances; per-account execution is in issue
    // order even though everything ran concurrently.
    let mut last_balance = vec![0i64; accounts.len()];
    for (i, f) in futures {
        last_balance[i] = f.take()?;
    }
    runtime.wait_idle();

    for (i, account) in accounts.iter().enumerate() {
        let history = account.history()?;
        println!(
            "account {i}: opening {}, final {} — history strictly in issue order: {}",
            history[0],
            last_balance[i],
            history.windows(2).all(|w| w[1] > w[0]),
        );
    }
    println!("mailboxes created: {}", runtime.active_objects());
    runtime.shutdown();
    Ok(())
}
