#!/usr/bin/env sh
# Local CI gate: formatting, lints (deny warnings), build, full test suite.
# Everything runs offline against the vendored shims (see vendor/README.md).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release (middleware stress: packing plug/unplug races)"
cargo test --release -q -p weavepar-middleware -p weavepar-apps --test stress_middleware

echo "==> chaos matrix, pinned seed (--release)"
cargo test --release -q -p weavepar-apps --test chaos_middleware

# Randomised seed on top of the pinned regression run: every fault schedule
# is a pure function of CHAOS_SEED, so a failure here is replayed exactly by
# re-running ci.sh with the printed seed exported.
CHAOS_SEED=$(awk 'BEGIN { srand(); printf "%d", rand() * 2147483647 }')
echo "==> chaos matrix, randomised seed CHAOS_SEED=$CHAOS_SEED (--release)"
CHAOS_SEED="$CHAOS_SEED" cargo test --release -q -p weavepar-apps --test chaos_middleware || {
    echo "chaos matrix failed under CHAOS_SEED=$CHAOS_SEED — replay with:"
    echo "  CHAOS_SEED=$CHAOS_SEED cargo test --release -p weavepar-apps --test chaos_middleware"
    exit 1
}

# Autotuner convergence under a randomised seed: the hill-climb trajectory is
# a pure function of TUNE_SEED, so a failure here is replayed exactly by
# re-running with the printed seed exported (the test also embeds the seed in
# its assertion message).
TUNE_SEED=$(awk 'BEGIN { srand(); printf "%d", rand() * 2147483647 }')
echo "==> autotuner convergence, randomised seed TUNE_SEED=$TUNE_SEED (--release)"
TUNE_SEED="$TUNE_SEED" cargo test --release -q -p weavepar tuning::tests::climbs_a_u_shaped || {
    echo "autotuner convergence failed under TUNE_SEED=$TUNE_SEED — replay with:"
    echo "  TUNE_SEED=$TUNE_SEED cargo test --release -p weavepar tuning::tests::climbs_a_u_shaped"
    exit 1
}

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> remote_throughput smoke (WEAVEPAR_BENCH_QUICK=1)"
WEAVEPAR_BENCH_QUICK=1 cargo bench -p weavepar-bench --bench remote_throughput

echo "==> autotune_throughput smoke (WEAVEPAR_BENCH_QUICK=1, pinned TUNE_SEED)"
WEAVEPAR_BENCH_QUICK=1 cargo bench -p weavepar-bench --bench autotune_throughput

echo "==> weaving_overhead smoke (WEAVEPAR_BENCH_QUICK=1)"
WEAVEPAR_BENCH_QUICK=1 cargo bench -p weavepar-bench --bench weaving_overhead

echo "==> joinpoint_values smoke (WEAVEPAR_BENCH_QUICK=1)"
WEAVEPAR_BENCH_QUICK=1 cargo bench -p weavepar-bench --bench joinpoint_values

echo "==> metrics_overhead smoke (WEAVEPAR_BENCH_QUICK=1)"
WEAVEPAR_BENCH_QUICK=1 cargo bench -p weavepar-bench --bench metrics_overhead

echo "CI OK"
